// Deterministic fault injection for the virtual device and cluster layers.
//
// The paper's experiments assume a GPU that always answers and an MPI layer
// that never loses a rank; a production deployment cannot. FaultInjector is a
// seeded, policy-driven source of *reproducible* failures — kernel launches
// that error out or stall, PCIe transfers that fail or arrive corrupted,
// messages that are dropped or delayed, ranks that die — so every degradation
// path in the stack can be exercised and asserted on in tests.
//
// Guarantees:
//  * Disabled by default. A default-constructed injector (or one whose policy
//    has every probability at zero) draws no random numbers, charges no
//    cycles, and leaves every code path bit-identical to a build without the
//    subsystem.
//  * Deterministic when enabled: decisions are a pure function of (policy,
//    seed, call sequence), so a failing fault schedule replays exactly.
//  * Observable: every injected fault and every recovery action taken in
//    response is recorded in a FaultLog that searchers expose via
//    mcts::SearchStats.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::util {

/// Raised when a fault could not be recovered from within its retry budget
/// (callers degrade — e.g. fall back to CPU-only search — rather than crash).
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What went wrong (injected).
enum class FaultKind : std::uint8_t {
  kKernelLaunchFailure = 0,  ///< launch returned an error, nothing executed
  kKernelStall,              ///< kernel ran but took stall_multiplier longer
  kTransferFailure,          ///< host<->device copy failed outright
  kCorruptReadback,          ///< download arrived corrupted (CRC mismatch)
  kDroppedMessage,           ///< point-to-point message lost in transit
  kDelayedMessage,           ///< message delivered delay_multiplier late
  kDeadRank,                 ///< rank stopped participating entirely
  kKernelHang,               ///< launch never completes (distinct from
                             ///< kKernelStall: only a watchdog surfaces it)
};
inline constexpr std::size_t kFaultKinds = 8;

/// What the system did about it.
enum class RecoveryKind : std::uint8_t {
  kRetry = 0,      ///< operation re-attempted after backoff
  kCpuFallback,    ///< searcher switched to CPU-only sequential iterations
  kPartialReduce,  ///< collective proceeded with surviving ranks only
  kAbandon,        ///< retry budget exhausted; work for this round lost
};
inline constexpr std::size_t kRecoveryKinds = 4;

/// Per-fault-site probabilities and severity knobs. All probabilities are
/// per-operation (per launch, per transfer attempt, per message).
struct FaultPolicy {
  double kernel_launch_failure = 0.0;
  double kernel_stall = 0.0;
  /// Device-time multiplier applied to a stalled kernel.
  double stall_multiplier = 4.0;
  double transfer_failure = 0.0;
  double corrupt_readback = 0.0;
  double message_drop = 0.0;
  double message_delay = 0.0;
  /// Latency multiplier applied to a delayed message.
  double delay_multiplier = 8.0;
  /// Probability that a kernel launch *never* completes. Unlike a stall
  /// (slow but finishes) or a launch failure (reported immediately), a hang
  /// only surfaces through the watchdog: VirtualGpu::wait_for times the wait
  /// out after hang_timeout_ms of real wall time and reports
  /// LaunchStatus::kHungTimeout (DESIGN.md §12).
  double kernel_hang = 0.0;
  /// Wall-clock milliseconds the watchdog waits before declaring a launch
  /// hung. Also the virtual-time charge of a surfaced hang (the host really
  /// spent that long blocked). Tests use small values (2-5 ms); callers with
  /// a wall deadline clamp the wait to the budget that remains.
  double hang_timeout_ms = 50.0;

  /// True when any probability is positive (the injector can ever fire).
  [[nodiscard]] constexpr bool any() const noexcept {
    return kernel_launch_failure > 0.0 || kernel_stall > 0.0 ||
           transfer_failure > 0.0 || corrupt_readback > 0.0 ||
           message_drop > 0.0 || message_delay > 0.0 || kernel_hang > 0.0;
  }
};

/// One injected fault or recovery action; `a`/`b` carry site context
/// (source/destination ranks for messages, attempt index for retries).
struct FaultRecord {
  FaultKind kind{};
  std::uint64_t at_cycle = 0;
  int a = -1;
  int b = -1;
};

struct RecoveryRecord {
  RecoveryKind kind{};
  std::uint64_t at_cycle = 0;
  int a = -1;
  int b = -1;
};

/// Append-only record of injected faults and recovery actions for one search.
/// Counts are always exact; the record vectors are capped so a 100%-failure
/// soak cannot balloon memory.
class FaultLog {
 public:
  static constexpr std::size_t kMaxRecords = 4096;

  void record_fault(FaultKind kind, std::uint64_t at_cycle, int a = -1,
                    int b = -1) {
    fault_counts_[static_cast<std::size_t>(kind)] += 1;
    if (fault_records_.size() < kMaxRecords) {
      fault_records_.push_back({kind, at_cycle, a, b});
    }
  }

  void record_recovery(RecoveryKind kind, std::uint64_t at_cycle, int a = -1,
                       int b = -1) {
    recovery_counts_[static_cast<std::size_t>(kind)] += 1;
    if (recovery_records_.size() < kMaxRecords) {
      recovery_records_.push_back({kind, at_cycle, a, b});
    }
  }

  [[nodiscard]] std::uint64_t faults() const noexcept {
    std::uint64_t n = 0;
    for (const auto c : fault_counts_) n += c;
    return n;
  }
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    std::uint64_t n = 0;
    for (const auto c : recovery_counts_) n += c;
    return n;
  }
  [[nodiscard]] std::uint64_t count(FaultKind kind) const noexcept {
    return fault_counts_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t count(RecoveryKind kind) const noexcept {
    return recovery_counts_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] bool empty() const noexcept {
    return faults() == 0 && recoveries() == 0;
  }

  [[nodiscard]] const std::vector<FaultRecord>& fault_records()
      const noexcept {
    return fault_records_;
  }
  [[nodiscard]] const std::vector<RecoveryRecord>& recovery_records()
      const noexcept {
    return recovery_records_;
  }

  void clear() noexcept {
    fault_counts_ = {};
    recovery_counts_ = {};
    fault_records_.clear();
    recovery_records_.clear();
  }

  /// Merges another log (per-rank logs into a per-search total, per-search
  /// totals into a per-experiment total).
  void accumulate(const FaultLog& other) {
    for (std::size_t k = 0; k < kFaultKinds; ++k) {
      fault_counts_[k] += other.fault_counts_[k];
    }
    for (std::size_t k = 0; k < kRecoveryKinds; ++k) {
      recovery_counts_[k] += other.recovery_counts_[k];
    }
    for (const auto& r : other.fault_records_) {
      if (fault_records_.size() >= kMaxRecords) break;
      fault_records_.push_back(r);
    }
    for (const auto& r : other.recovery_records_) {
      if (recovery_records_.size() >= kMaxRecords) break;
      recovery_records_.push_back(r);
    }
  }

 private:
  std::array<std::uint64_t, kFaultKinds> fault_counts_{};
  std::array<std::uint64_t, kRecoveryKinds> recovery_counts_{};
  std::vector<FaultRecord> fault_records_;
  std::vector<RecoveryRecord> recovery_records_;
};

/// Seeded decision source. One injector per failure domain (a VirtualGpu, a
/// Communicator); each draw both decides and, when it fires, logs the fault.
class FaultInjector {
 public:
  /// Disabled injector: every query answers "no fault" without drawing.
  FaultInjector() = default;

  FaultInjector(const FaultPolicy& policy, std::uint64_t seed)
      : enabled_(policy.any()), policy_(policy), rng_(seed) {
    expects(valid_probability(policy.kernel_launch_failure) &&
                valid_probability(policy.kernel_stall) &&
                valid_probability(policy.transfer_failure) &&
                valid_probability(policy.corrupt_readback) &&
                valid_probability(policy.message_drop) &&
                valid_probability(policy.message_delay) &&
                valid_probability(policy.kernel_hang),
            "fault probabilities in [0, 1]");
    expects(policy.stall_multiplier >= 1.0 && policy.delay_multiplier >= 1.0,
            "fault multipliers >= 1");
    expects(policy.hang_timeout_ms > 0.0, "hang timeout positive");
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const FaultPolicy& policy() const noexcept { return policy_; }

  [[nodiscard]] FaultLog& log() noexcept { return log_; }
  [[nodiscard]] const FaultLog& log() const noexcept { return log_; }
  void reset_log() noexcept { log_.clear(); }

  [[nodiscard]] bool kernel_launch_fails(std::uint64_t at_cycle) {
    return fire(policy_.kernel_launch_failure, FaultKind::kKernelLaunchFailure,
                at_cycle);
  }
  [[nodiscard]] bool kernel_stalls(std::uint64_t at_cycle) {
    return fire(policy_.kernel_stall, FaultKind::kKernelStall, at_cycle);
  }
  [[nodiscard]] bool transfer_fails(std::uint64_t at_cycle) {
    return fire(policy_.transfer_failure, FaultKind::kTransferFailure,
                at_cycle);
  }
  [[nodiscard]] bool readback_corrupted(std::uint64_t at_cycle) {
    return fire(policy_.corrupt_readback, FaultKind::kCorruptReadback,
                at_cycle);
  }
  [[nodiscard]] bool message_dropped(std::uint64_t at_cycle, int from,
                                     int to) {
    return fire(policy_.message_drop, FaultKind::kDroppedMessage, at_cycle,
                from, to);
  }
  [[nodiscard]] bool message_delayed(std::uint64_t at_cycle, int from,
                                     int to) {
    return fire(policy_.message_delay, FaultKind::kDelayedMessage, at_cycle,
                from, to);
  }
  [[nodiscard]] bool kernel_hangs(std::uint64_t at_cycle) {
    return fire(policy_.kernel_hang, FaultKind::kKernelHang, at_cycle);
  }

 private:
  [[nodiscard]] static constexpr bool valid_probability(double p) noexcept {
    return p >= 0.0 && p <= 1.0;
  }

  [[nodiscard]] bool fire(double probability, FaultKind kind,
                          std::uint64_t at_cycle, int a = -1, int b = -1) {
    if (!enabled_ || probability <= 0.0) return false;
    // probability >= 1 must fire without consuming entropy the same way a
    // fractional probability does, so that "always fail" schedules do not
    // depend on draw ordering at other sites.
    if (probability < 1.0 && rng_.next_double() >= probability) return false;
    log_.record_fault(kind, at_cycle, a, b);
    return true;
  }

  bool enabled_ = false;
  FaultPolicy policy_{};
  XorShift128Plus rng_{0};
  FaultLog log_;
};

}  // namespace gpu_mcts::util
