// A small fixed-size thread pool.
//
// Used by the root-parallel CPU searcher when *real* host parallelism is
// requested (the default experiment mode uses virtual-time equivalence
// instead, see DESIGN.md §5.1, so results do not depend on host core count).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gpu_mcts::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace gpu_mcts::util
