// A small fixed-size thread pool.
//
// Used by the root-parallel CPU searcher when *real* host parallelism is
// requested (the default experiment mode uses virtual-time equivalence
// instead, see DESIGN.md §5.1, so results do not depend on host core count),
// and by the multi-threaded VirtualGpu execution backend (DESIGN.md §9),
// which partitions kernel grids and per-tree host phases across the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gpu_mcts::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(begin, end) over a deterministic chunked partition of [0, n)
  /// and waits for completion. Chunks are contiguous ranges (at most
  /// 4 * worker_count() of them, for load balance without per-item task
  /// overhead); the partition depends only on n and the worker count, never
  /// on scheduling, so callers can rely on it for reproducible decomposition.
  void parallel_for_ranges(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

 private:
  void worker_loop();

  /// Waits for every future (so no task can outlive its captured state),
  /// then rethrows the first exception encountered, if any.
  static void wait_all(std::vector<std::future<void>>& futures);

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace gpu_mcts::util
