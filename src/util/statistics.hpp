// Streaming statistics used by the experiment harness: Welford mean/variance,
// binomial confidence intervals for win ratios, and simple series summaries.
#pragma once

#include <cstddef>
#include <span>

namespace gpu_mcts::util {

/// Welford's online algorithm: numerically stable streaming mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel reduction of partial stats).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Wilson score interval for a binomial proportion — the right interval for
/// win ratios at the small game counts experiments actually run.
struct Interval {
  double low = 0.0;
  double high = 0.0;
};

[[nodiscard]] Interval wilson_interval(std::size_t successes,
                                       std::size_t trials,
                                       double z = 1.96) noexcept;

/// Mean of a span (0 for empty input).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile in [0,1] of a span (copies + sorts).
[[nodiscard]] double quantile_of(std::span<const double> xs, double q);

}  // namespace gpu_mcts::util
