// In-process message-passing substrate standing in for MPI (paper §V /
// Figure 9: "Multi GPU Results - based on MPI communication scheme").
//
// Ranks are simulated timelines: each owns a VirtualClock, point-to-point
// messages carry a virtual delivery time, and collectives advance every
// participant to the barrier instant plus the modeled collective cost
// (binary-tree allreduce: base latency x ceil(log2 ranks) + bandwidth term).
// The code path a real MPI build would take — contribute local root
// statistics, reduce, broadcast the decision — is exercised identically.
//
// Failure semantics (all deterministic, all off by default):
//  * A util::FaultInjector can drop or delay point-to-point messages.
//  * Ranks can die (kill_rank); dead ranks neither send nor receive, and
//    collectives wait collective_timeout_cycles for them before proceeding
//    with the survivors' contributions only.
//  * recv never "hangs as a silent nullopt": it returns either the message
//    or a RecvError saying *why* (nothing was ever sent vs. the wait timed
//    out) and between which ranks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"

namespace gpu_mcts::cluster {

struct CommCosts {
  /// Virtual host cycles of one-hop point-to-point latency.
  double latency_cycles = 1.5e5;
  /// Additional cycles per 8-byte word transferred.
  double per_word_cycles = 12.0;
  /// Virtual cycles a collective waits for missing (dead) participants
  /// before proceeding with the survivors — the MPI-with-failover analogue
  /// of a watchdog timeout. Only charged when a rank is actually dead.
  double collective_timeout_cycles = 2.0e6;
};

/// A payload with its virtual arrival time.
struct Message {
  int source = 0;
  std::vector<double> payload;
  std::uint64_t available_at_cycle = 0;
};

/// Why a receive produced no message.
struct RecvError {
  enum class Reason : std::uint8_t {
    /// Nothing was ever sent on this (from -> to) edge: in a real system
    /// this blocking receive would deadlock.
    kNoMessage = 0,
    /// A finite timeout elapsed before any message became deliverable; the
    /// receiver's clock advanced by the full timeout.
    kTimedOut,
  };
  Reason reason = Reason::kNoMessage;
  int to = 0;
  int from = 0;

  [[nodiscard]] std::string describe() const;
};

/// Outcome of a receive: the message, or a diagnosable error.
struct RecvResult {
  std::optional<Message> message;
  /// Meaningful only when !ok().
  RecvError error{};

  [[nodiscard]] bool ok() const noexcept { return message.has_value(); }
};

/// Outcome of an allreduce that may have lost participants.
struct AllreduceResult {
  /// Element-wise sum over the *contributing* (alive) ranks.
  std::vector<double> sum;
  /// Ranks whose contributions were merged.
  int contributors = 0;
  /// True when the collective proceeded without dead ranks after waiting
  /// out the collective timeout.
  bool timed_out = false;
};

class Communicator {
 public:
  /// "Wait forever" (report kNoMessage rather than ever time out).
  static constexpr std::uint64_t kNoTimeout =
      std::numeric_limits<std::uint64_t>::max();

  explicit Communicator(int ranks, CommCosts costs = {});

  [[nodiscard]] int ranks() const noexcept { return ranks_; }
  [[nodiscard]] const CommCosts& costs() const noexcept { return costs_; }

  /// Installs a fault injector for message drop/delay (default: disabled).
  void set_fault_injector(util::FaultInjector injector) noexcept {
    injector_ = std::move(injector);
  }
  [[nodiscard]] util::FaultInjector& fault_injector() noexcept {
    return injector_;
  }
  [[nodiscard]] const util::FaultInjector& fault_injector() const noexcept {
    return injector_;
  }

  /// Attaches an observability tracer: collectives emit spans on the "comm"
  /// track and record an "allreduce_cycles" histogram. nullptr disables.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    comm_track_ = tracer != nullptr ? tracer->track("comm") : 0;
  }

  /// Marks a rank dead: it stops sending, receiving, and contributing to
  /// collectives. Recorded as a kDeadRank fault.
  void kill_rank(int rank);
  [[nodiscard]] bool alive(int rank) const;
  [[nodiscard]] int alive_ranks() const noexcept;

  /// Per-rank virtual clock (all start at zero).
  [[nodiscard]] util::VirtualClock& clock(int rank);
  [[nodiscard]] const util::VirtualClock& clock(int rank) const;

  /// Non-blocking send: charges the sender the injection cost and enqueues
  /// the message with its delivery time on the receiver's timeline. Sends
  /// involving a dead rank, or dropped by the fault injector, vanish after
  /// charging the sender (the sender cannot tell — as with real MPI).
  void send(int from, int to, std::span<const double> payload);

  /// Blocking receive from a specific source, advancing the receiver's
  /// clock to the message's arrival. With a finite timeout the receiver
  /// waits at most `timeout_cycles` beyond its current time; on expiry the
  /// clock advances by the full timeout and RecvError::kTimedOut is
  /// returned. With kNoTimeout and no message in flight the result is
  /// RecvError::kNoMessage (a real system would deadlock here).
  [[nodiscard]] RecvResult recv(int to, int from,
                                std::uint64_t timeout_cycles = kNoTimeout);

  /// Barrier: advances every living rank to the latest participant's time
  /// plus one latency hop.
  void barrier();

  /// Allreduce(sum) over equal-length per-rank vectors. Living ranks meet
  /// at the latest survivor's time — plus the collective timeout when any
  /// rank is dead — then pay the tree-reduction cost; the sum merges only
  /// surviving contributions (identical on all survivors, as MPI with a
  /// failover layer would guarantee).
  [[nodiscard]] AllreduceResult allreduce_sum(
      const std::vector<std::vector<double>>& contributions);

  /// Cycles the modeled allreduce costs for a vector of `words` doubles
  /// across all ranks (dead or not — used for budget planning).
  [[nodiscard]] double allreduce_cost_cycles(std::size_t words) const noexcept;

 private:
  [[nodiscard]] double tree_cost_cycles(std::size_t words,
                                        int participants) const noexcept;

  int ranks_;
  CommCosts costs_;
  std::vector<util::VirtualClock> clocks_;
  std::vector<std::uint8_t> alive_;
  // mailboxes_[to][from] = FIFO of undelivered messages.
  std::vector<std::vector<std::deque<Message>>> mailboxes_;
  util::FaultInjector injector_;
  obs::Tracer* tracer_ = nullptr;
  int comm_track_ = 0;
};

}  // namespace gpu_mcts::cluster
