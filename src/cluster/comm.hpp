// In-process message-passing substrate standing in for MPI (paper §V /
// Figure 9: "Multi GPU Results - based on MPI communication scheme").
//
// Ranks are simulated timelines: each owns a VirtualClock, point-to-point
// messages carry a virtual delivery time, and collectives advance every
// participant to the barrier instant plus the modeled collective cost
// (binary-tree allreduce: base latency x ceil(log2 ranks) + bandwidth term).
// The code path a real MPI build would take — contribute local root
// statistics, reduce, broadcast the decision — is exercised identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/clock.hpp"

namespace gpu_mcts::cluster {

struct CommCosts {
  /// Virtual host cycles of one-hop point-to-point latency.
  double latency_cycles = 1.5e5;
  /// Additional cycles per 8-byte word transferred.
  double per_word_cycles = 12.0;
};

/// A payload with its virtual arrival time.
struct Message {
  int source = 0;
  std::vector<double> payload;
  std::uint64_t available_at_cycle = 0;
};

class Communicator {
 public:
  explicit Communicator(int ranks, CommCosts costs = {});

  [[nodiscard]] int ranks() const noexcept { return ranks_; }
  [[nodiscard]] const CommCosts& costs() const noexcept { return costs_; }

  /// Per-rank virtual clock (all start at zero).
  [[nodiscard]] util::VirtualClock& clock(int rank);
  [[nodiscard]] const util::VirtualClock& clock(int rank) const;

  /// Non-blocking send: charges the sender the injection cost and enqueues
  /// the message with its delivery time on the receiver's timeline.
  void send(int from, int to, std::span<const double> payload);

  /// Blocking receive from a specific source: advances the receiver's clock
  /// to the message's arrival if it has not reached it yet. Returns nullopt
  /// when no message from `from` was ever sent (deadlock in a real system;
  /// surfaced as an error state here).
  [[nodiscard]] std::optional<Message> recv(int to, int from);

  /// Barrier: advances every rank to the latest participant's time plus one
  /// latency hop.
  void barrier();

  /// Allreduce(sum) over equal-length per-rank vectors. Every rank's clock
  /// advances to barrier + tree-reduction cost; the summed vector is
  /// returned (identical on all ranks, as MPI_Allreduce guarantees).
  [[nodiscard]] std::vector<double> allreduce_sum(
      const std::vector<std::vector<double>>& contributions);

  /// Cycles the modeled allreduce costs for a vector of `words` doubles.
  [[nodiscard]] double allreduce_cost_cycles(std::size_t words) const noexcept;

 private:
  int ranks_;
  CommCosts costs_;
  std::vector<util::VirtualClock> clocks_;
  // mailboxes_[to][from] = FIFO of undelivered messages.
  std::vector<std::vector<std::deque<Message>>> mailboxes_;
};

}  // namespace gpu_mcts::cluster
