// Distributed root parallelism across multiple (virtual) GPUs — the MPI-GPU
// configuration of the paper's Figure 9 ("No of GPUs (112 block x 64
// Threads)"): every rank drives one GPU with the block-parallel searcher,
// and per move the ranks allreduce their root statistics and play the
// majority-vote move.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/comm.hpp"
#include "game/game_traits.hpp"
#include "mcts/config.hpp"
#include "mcts/searcher.hpp"
#include "obs/trace.hpp"
#include "parallel/block_parallel.hpp"
#include "parallel/merge.hpp"
#include "util/check.hpp"

namespace gpu_mcts::cluster {

template <game::Game G>
class DistributedRootSearcher final : public mcts::Searcher<G> {
 public:
  struct Options {
    int ranks = 2;
    /// Per-rank GPU geometry; Figure 9 uses 112 blocks x 64 threads.
    simt::LaunchConfig launch{.blocks = 112, .threads_per_block = 64};
    CommCosts comm{};
    /// Ranks that die before the search (fault-injection scenario): they
    /// contribute nothing and the allreduce proceeds with the survivors
    /// after the collective timeout. Must leave at least one rank alive.
    std::vector<int> dead_ranks{};
    /// Message drop/delay faults on the communication layer.
    util::FaultPolicy comm_faults{};
  };

  DistributedRootSearcher(Options options, mcts::SearchConfig config = {},
                          simt::VirtualGpu gpu = simt::VirtualGpu())
      : options_(options), config_(config), seed_(config.seed) {
    util::expects(options.ranks >= 1, "at least one rank");
    ranks_.reserve(static_cast<std::size_t>(options.ranks));
    for (int r = 0; r < options.ranks; ++r) {
      mcts::SearchConfig rank_config = config;
      rank_config.seed = util::derive_seed(config.seed, 0xa110c ^ r);
      ranks_.push_back(
          std::make_unique<parallel::BlockParallelGpuSearcher<G>>(
              typename parallel::BlockParallelGpuSearcher<G>::Options{
                  options.launch},
              rank_config, gpu));
    }
  }

  using mcts::Searcher<G>::choose_move;

  [[nodiscard]] typename G::Move choose_move(
      const typename G::State& state,
      const mcts::SearchBudget& budget) override {
    const double budget_seconds = budget.virtual_seconds;
    util::expects(!G::is_terminal(state), "choose_move on terminal state");
    Communicator comm(options_.ranks, options_.comm);
    comm.set_fault_injector(util::FaultInjector(
        options_.comm_faults, util::derive_seed(seed_, 0xfa117ULL)));
    for (const int dead : options_.dead_ranks) comm.kill_rank(dead);
    util::expects(comm.alive_ranks() >= 1, "at least one surviving rank");

    if (tracer_ != nullptr) {
      (void)tracer_->begin_search(name());
      tracer_->set_frequency(comm.clock(0).frequency_hz());
      comm.set_tracer(tracer_);
    }

    // Each rank spends the move budget minus its share of communication
    // (the allreduce must fit inside the move clock).
    const double comm_seconds =
        comm.allreduce_cost_cycles(kReduceWords) / comm.clock(0).frequency_hz();
    const double rank_budget =
        std::max(budget_seconds * 0.05, budget_seconds - comm_seconds);

    // Root statistics are exchanged as fixed-size (visits, wins) tables
    // indexed by move id — the wire format a real MPI implementation would
    // use (move space is static and small for board games).
    std::vector<std::vector<double>> contributions(
        static_cast<std::size_t>(options_.ranks),
        std::vector<double>(kReduceWords, 0.0));

    stats_ = {};
    for (int r = 0; r < options_.ranks; ++r) {
      // A dead rank never starts its search: its contribution table stays
      // zero and its clock stops mattering to the collective.
      if (!comm.alive(r)) continue;
      auto& searcher = *ranks_[static_cast<std::size_t>(r)];
      (void)searcher.choose_move(state, rank_budget);
      const auto& rank_stats = searcher.last_stats();
      stats_.simulations += rank_stats.simulations;
      stats_.rounds += rank_stats.rounds;
      stats_.cpu_iterations += rank_stats.cpu_iterations;
      stats_.gpu_simulations += rank_stats.gpu_simulations;
      stats_.tree_nodes += rank_stats.tree_nodes;
      if (rank_stats.max_depth > stats_.max_depth)
        stats_.max_depth = rank_stats.max_depth;
      comm.clock(r).advance(static_cast<std::uint64_t>(
          rank_stats.virtual_seconds * comm.clock(r).frequency_hz()));
      if (tracer_ != nullptr) {
        // Ranks are concurrent in model time (searched serially here), so
        // each gets its own track with a span covering its search window.
        const int track = tracer_->track("rank" + std::to_string(r));
        tracer_->begin(track, "rank_search", 0,
                       {{"simulations",
                         static_cast<double>(rank_stats.simulations)},
                        {"gpu_simulations",
                         static_cast<double>(rank_stats.gpu_simulations)}});
        tracer_->end(track, "rank_search", comm.clock(r).cycles());
      }

      auto& table = contributions[static_cast<std::size_t>(r)];
      for (const auto& m : searcher.last_root_stats()) {
        const auto slot = static_cast<std::size_t>(m.move);
        util::check(slot < kMoveSlots, "move id fits the reduce table");
        table[2 * slot] += static_cast<double>(m.visits);
        table[2 * slot + 1] += m.wins;
      }
      stats_.faults.accumulate(searcher.last_stats().faults);
    }

    // The collective completes even with dead ranks: survivors wait out the
    // timeout, then merge only surviving contributions.
    const AllreduceResult reduced = comm.allreduce_sum(contributions);
    const std::vector<double>& summed = reduced.sum;

    // Model time for the move: the slowest surviving rank's clock after the
    // collective.
    double elapsed = 0.0;
    for (int r = 0; r < options_.ranks; ++r) {
      if (!comm.alive(r)) continue;
      elapsed = std::max(elapsed, comm.clock(r).seconds());
    }
    stats_.virtual_seconds = elapsed;
    stats_.faults.accumulate(comm.fault_injector().log());

    std::vector<parallel::MergedMove<typename G::Move>> merged;
    for (std::size_t slot = 0; slot < kMoveSlots; ++slot) {
      const auto visits = static_cast<std::uint64_t>(summed[2 * slot]);
      if (visits == 0) continue;
      merged.push_back({static_cast<typename G::Move>(slot), visits,
                        summed[2 * slot + 1]});
    }
    return parallel::best_merged_move(merged);
  }

  [[nodiscard]] const mcts::SearchStats& last_stats() const noexcept override {
    return stats_;
  }

  [[nodiscard]] std::string name() const override {
    return "distributed root-parallel (" + std::to_string(options_.ranks) +
           " GPUs, " + std::to_string(options_.launch.blocks) + "x" +
           std::to_string(options_.launch.threads_per_block) + ")";
  }

  void reseed(std::uint64_t seed) override {
    seed_ = seed;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      ranks_[r]->reseed(util::derive_seed(seed, 0xa110c ^ r));
    }
  }

  /// The tracer covers the cluster level (per-rank spans, comm collectives);
  /// it is deliberately not forwarded into the per-rank block searchers,
  /// whose per-round events would interleave meaninglessly across ranks.
  void set_tracer(obs::Tracer* tracer) noexcept override { tracer_ = tracer; }

 private:
  /// Move ids for supported games are < 128 (Reversi: 0..64 incl. pass).
  static constexpr std::size_t kMoveSlots = 128;
  static constexpr std::size_t kReduceWords = 2 * kMoveSlots;

  Options options_;
  mcts::SearchConfig config_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<parallel::BlockParallelGpuSearcher<G>>> ranks_;
  mcts::SearchStats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace gpu_mcts::cluster
