#include "cluster/comm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace gpu_mcts::cluster {

Communicator::Communicator(int ranks, CommCosts costs)
    : ranks_(ranks), costs_(costs) {
  util::expects(ranks >= 1, "communicator needs at least one rank");
  clocks_.assign(static_cast<std::size_t>(ranks), util::VirtualClock(2.93e9));
  mailboxes_.assign(
      static_cast<std::size_t>(ranks),
      std::vector<std::deque<Message>>(static_cast<std::size_t>(ranks)));
}

util::VirtualClock& Communicator::clock(int rank) {
  util::expects(rank >= 0 && rank < ranks_, "rank in range");
  return clocks_[static_cast<std::size_t>(rank)];
}

const util::VirtualClock& Communicator::clock(int rank) const {
  util::expects(rank >= 0 && rank < ranks_, "rank in range");
  return clocks_[static_cast<std::size_t>(rank)];
}

void Communicator::send(int from, int to, std::span<const double> payload) {
  util::expects(from >= 0 && from < ranks_, "source rank in range");
  util::expects(to >= 0 && to < ranks_, "destination rank in range");
  auto& sender = clock(from);
  const auto inject = static_cast<std::uint64_t>(
      costs_.per_word_cycles * static_cast<double>(payload.size()));
  sender.advance(inject);
  Message msg;
  msg.source = from;
  msg.payload.assign(payload.begin(), payload.end());
  msg.available_at_cycle =
      sender.cycles() + static_cast<std::uint64_t>(costs_.latency_cycles);
  mailboxes_[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)]
      .push_back(std::move(msg));
}

std::optional<Message> Communicator::recv(int to, int from) {
  util::expects(from >= 0 && from < ranks_, "source rank in range");
  util::expects(to >= 0 && to < ranks_, "destination rank in range");
  auto& box =
      mailboxes_[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)];
  if (box.empty()) return std::nullopt;
  Message msg = std::move(box.front());
  box.pop_front();
  clock(to).advance_to(msg.available_at_cycle);
  return msg;
}

void Communicator::barrier() {
  std::uint64_t latest = 0;
  for (const auto& c : clocks_) latest = std::max(latest, c.cycles());
  const auto after = latest + static_cast<std::uint64_t>(costs_.latency_cycles);
  for (auto& c : clocks_) c.advance_to(after);
}

double Communicator::allreduce_cost_cycles(std::size_t words) const noexcept {
  const double hops = ranks_ > 1
                          ? std::ceil(std::log2(static_cast<double>(ranks_)))
                          : 0.0;
  return hops * (costs_.latency_cycles +
                 costs_.per_word_cycles * static_cast<double>(words));
}

std::vector<double> Communicator::allreduce_sum(
    const std::vector<std::vector<double>>& contributions) {
  util::expects(contributions.size() == static_cast<std::size_t>(ranks_),
                "one contribution per rank");
  const std::size_t words =
      contributions.empty() ? 0 : contributions.front().size();
  for (const auto& c : contributions) {
    util::expects(c.size() == words, "equal-length contributions");
  }
  std::vector<double> sum(words, 0.0);
  for (const auto& c : contributions) {
    for (std::size_t i = 0; i < words; ++i) sum[i] += c[i];
  }
  // Time: everyone meets at the latest entry, then pays the reduction tree.
  std::uint64_t latest = 0;
  for (const auto& c : clocks_) latest = std::max(latest, c.cycles());
  const auto done =
      latest + static_cast<std::uint64_t>(allreduce_cost_cycles(words));
  for (auto& c : clocks_) c.advance_to(done);
  return sum;
}

}  // namespace gpu_mcts::cluster
