#include "cluster/comm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace gpu_mcts::cluster {

std::string RecvError::describe() const {
  std::string msg = reason == Reason::kNoMessage
                        ? "recv: no message ever sent"
                        : "recv: timed out";
  msg += " (rank ";
  msg += std::to_string(from);
  msg += " -> rank ";
  msg += std::to_string(to);
  msg += ')';
  return msg;
}

Communicator::Communicator(int ranks, CommCosts costs)
    : ranks_(ranks), costs_(costs) {
  util::expects(ranks >= 1, "communicator needs at least one rank");
  clocks_.assign(static_cast<std::size_t>(ranks), util::VirtualClock(2.93e9));
  alive_.assign(static_cast<std::size_t>(ranks), 1);
  mailboxes_.assign(
      static_cast<std::size_t>(ranks),
      std::vector<std::deque<Message>>(static_cast<std::size_t>(ranks)));
}

util::VirtualClock& Communicator::clock(int rank) {
  util::expects(rank >= 0 && rank < ranks_, "rank in range");
  return clocks_[static_cast<std::size_t>(rank)];
}

const util::VirtualClock& Communicator::clock(int rank) const {
  util::expects(rank >= 0 && rank < ranks_, "rank in range");
  return clocks_[static_cast<std::size_t>(rank)];
}

void Communicator::kill_rank(int rank) {
  util::expects(rank >= 0 && rank < ranks_, "rank in range");
  if (!alive_[static_cast<std::size_t>(rank)]) return;
  alive_[static_cast<std::size_t>(rank)] = 0;
  injector_.log().record_fault(util::FaultKind::kDeadRank,
                               clock(rank).cycles(), rank);
}

bool Communicator::alive(int rank) const {
  util::expects(rank >= 0 && rank < ranks_, "rank in range");
  return alive_[static_cast<std::size_t>(rank)] != 0;
}

int Communicator::alive_ranks() const noexcept {
  int n = 0;
  for (const auto a : alive_) n += a != 0 ? 1 : 0;
  return n;
}

void Communicator::send(int from, int to, std::span<const double> payload) {
  util::expects(from >= 0 && from < ranks_, "source rank in range");
  util::expects(to >= 0 && to < ranks_, "destination rank in range");
  if (!alive(from)) return;  // a dead rank emits nothing
  auto& sender = clock(from);
  const auto inject = static_cast<std::uint64_t>(
      costs_.per_word_cycles * static_cast<double>(payload.size()));
  sender.advance(inject);
  // A send to a dead rank, or one the injector eats, charges the sender and
  // vanishes — MPI's eager-send cannot detect either case at the sender.
  if (!alive(to)) {
    injector_.log().record_fault(util::FaultKind::kDroppedMessage,
                                 sender.cycles(), from, to);
    return;
  }
  if (injector_.message_dropped(sender.cycles(), from, to)) return;
  double latency = costs_.latency_cycles;
  if (injector_.message_delayed(sender.cycles(), from, to)) {
    latency *= injector_.policy().delay_multiplier;
  }
  Message msg;
  msg.source = from;
  msg.payload.assign(payload.begin(), payload.end());
  msg.available_at_cycle = sender.cycles() + static_cast<std::uint64_t>(latency);
  mailboxes_[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)]
      .push_back(std::move(msg));
}

RecvResult Communicator::recv(int to, int from, std::uint64_t timeout_cycles) {
  util::expects(from >= 0 && from < ranks_, "source rank in range");
  util::expects(to >= 0 && to < ranks_, "destination rank in range");
  auto& box =
      mailboxes_[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)];
  auto& receiver = clock(to);

  RecvResult result;
  if (!box.empty()) {
    const std::uint64_t arrival = box.front().available_at_cycle;
    const bool within_timeout =
        timeout_cycles == kNoTimeout ||
        arrival <= receiver.cycles() ||
        arrival - receiver.cycles() <= timeout_cycles;
    if (within_timeout) {
      Message msg = std::move(box.front());
      box.pop_front();
      receiver.advance_to(msg.available_at_cycle);
      result.message = std::move(msg);
      return result;
    }
    // In flight but too late: the receiver waited out its timeout.
    receiver.advance(timeout_cycles);
    result.error = {RecvError::Reason::kTimedOut, to, from};
    return result;
  }
  if (timeout_cycles != kNoTimeout) {
    receiver.advance(timeout_cycles);
    result.error = {RecvError::Reason::kTimedOut, to, from};
    return result;
  }
  // Nothing was ever sent and the caller would wait forever: surface the
  // would-be deadlock as a diagnosable error instead of hanging.
  result.error = {RecvError::Reason::kNoMessage, to, from};
  return result;
}

void Communicator::barrier() {
  std::uint64_t latest = 0;
  for (int r = 0; r < ranks_; ++r) {
    if (alive(r)) latest = std::max(latest, clock(r).cycles());
  }
  const auto after = latest + static_cast<std::uint64_t>(costs_.latency_cycles);
  for (int r = 0; r < ranks_; ++r) {
    if (alive(r)) clock(r).advance_to(after);
  }
}

double Communicator::tree_cost_cycles(std::size_t words,
                                      int participants) const noexcept {
  const double hops =
      participants > 1 ? std::ceil(std::log2(static_cast<double>(participants)))
                       : 0.0;
  return hops * (costs_.latency_cycles +
                 costs_.per_word_cycles * static_cast<double>(words));
}

double Communicator::allreduce_cost_cycles(std::size_t words) const noexcept {
  return tree_cost_cycles(words, ranks_);
}

AllreduceResult Communicator::allreduce_sum(
    const std::vector<std::vector<double>>& contributions) {
  util::expects(contributions.size() == static_cast<std::size_t>(ranks_),
                "one contribution per rank");
  const std::size_t words =
      contributions.empty() ? 0 : contributions.front().size();
  for (const auto& c : contributions) {
    util::expects(c.size() == words, "equal-length contributions");
  }
  util::expects(alive_ranks() >= 1, "allreduce needs a surviving rank");

  AllreduceResult result;
  result.sum.assign(words, 0.0);
  for (int r = 0; r < ranks_; ++r) {
    if (!alive(r)) continue;
    const auto& c = contributions[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < words; ++i) result.sum[i] += c[i];
    result.contributors += 1;
  }

  // Time: survivors meet at the latest survivor's entry; a dead rank makes
  // everyone wait out the watchdog timeout before the partial reduction.
  std::uint64_t latest = 0;
  std::uint64_t entered = 0;
  for (int r = 0; r < ranks_; ++r) {
    if (alive(r)) latest = std::max(latest, clock(r).cycles());
  }
  entered = latest;
  result.timed_out = result.contributors < ranks_;
  if (result.timed_out) {
    latest += static_cast<std::uint64_t>(costs_.collective_timeout_cycles);
    injector_.log().record_recovery(util::RecoveryKind::kPartialReduce, latest,
                                    result.contributors, ranks_);
  }
  const auto done = latest + static_cast<std::uint64_t>(
                                 tree_cost_cycles(words, result.contributors));
  for (int r = 0; r < ranks_; ++r) {
    if (alive(r)) clock(r).advance_to(done);
  }
  if (tracer_ != nullptr) {
    tracer_->begin(comm_track_, "allreduce", entered,
                   {{"words", static_cast<double>(words)},
                    {"contributors", static_cast<double>(result.contributors)},
                    {"timed_out", result.timed_out ? 1.0 : 0.0}});
    tracer_->end(comm_track_, "allreduce", done);
    tracer_->metrics()
        .histogram("allreduce_cycles",
                   {1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7})
        .observe(static_cast<double>(done - entered));
    tracer_->metrics().counter("allreduces").add(1);
  }
  return result;
}

}  // namespace gpu_mcts::cluster
