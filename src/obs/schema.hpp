// JSONL trace-schema validation (DESIGN.md §8).
//
// The JSONL export is the machine-readable contract of the observability
// layer; this header is its checker. validate_trace_stream() parses every
// line with a real (minimal) JSON parser and verifies the schema-v1 rules:
// known line types, required keys with the right primitive types, events
// referencing declared tracks/searches, and a trailer whose counts match.
// Well-known events get semantic checks on top: a "stop_reason" instant
// (emitted by supervised searches, DESIGN.md §12) must carry args.reason as
// an integral mcts::StopReason value in [0, mcts::kStopReasons).
// Used by tests/obs and by the `trace_validate` tool the CI smoke job runs
// over a freshly produced trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace gpu_mcts::obs {

/// Minimal JSON value (enough for flat trace lines with one nesting level).
struct JsonValue {
  using Object = std::map<std::string, JsonValue>;
  using Array = std::vector<JsonValue>;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v =
      nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] const Object& object() const { return std::get<Object>(v); }
  [[nodiscard]] const Array& array() const { return std::get<Array>(v); }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& string() const {
    return std::get<std::string>(v);
  }
};

/// Parses one JSON document from `text`. Returns false (and fills `error`)
/// on malformed input or trailing garbage.
[[nodiscard]] bool parse_json(const std::string& text, JsonValue& out,
                              std::string& error);

struct ValidationResult {
  bool ok = true;
  /// 1-based line of the first error (0 when ok).
  std::size_t line = 0;
  std::string error;
  /// Totals over the validated stream.
  std::size_t lines = 0;
  std::size_t events = 0;
};

/// Validates a full JSONL trace stream against schema v1.
[[nodiscard]] ValidationResult validate_trace_stream(std::istream& in);

/// Validates a single line given the declared track/search counts (meta and
/// declaration lines pass their own checks; counts of 0 skip range checks).
[[nodiscard]] bool validate_trace_line(const std::string& line,
                                       std::size_t tracks,
                                       std::size_t searches,
                                       std::string& error);

}  // namespace gpu_mcts::obs
