// Tracer: the event half of the observability layer (DESIGN.md §8).
//
// Every searcher in this repo runs on *virtual* time (util::VirtualClock), so
// a trace is not a profile of the host — it is a reconstruction of where the
// modeled hardware spends its cycles: selection vs. kernel vs. PCIe transfer
// vs. allreduce. Events are spans (begin/end), instants, and counters, each
// stamped with the emitting timeline's virtual cycle count and the index of
// the search (choose_move call) that produced it.
//
// Guarantees:
//  * Zero overhead when disabled. Searchers hold a `Tracer*` that is nullptr
//    by default; every instrumentation site is a single pointer test. With no
//    tracer attached the search path is bit-identical to a build without the
//    subsystem (tests/obs/test_bitexact.cpp holds this to golden numbers).
//  * Deterministic. Events live in per-track buffers (host timeline, device
//    timeline, per-rank timelines, ...) appended in program order; merged()
//    produces a total order keyed by (cycles, track, sequence) that is a pure
//    function of the search — identical on every run and host.
//  * Bounded. Each track caps its buffer (kDefaultMaxEventsPerTrack);
//    overflow drops records but keeps exact drop counts, so a soak run
//    cannot balloon memory and truncation is always visible in the export.
//
// Names passed to begin()/end()/instant()/counter() and Arg::name must be
// string literals (or otherwise outlive the tracer): events store the
// pointer, not a copy. All in-tree call sites use the stable phase
// vocabulary documented in DESIGN.md §8.
//
// Threading: a Tracer is single-owner — it must only be driven from the
// thread that controls the traced subject. The multi-threaded execution
// backend (DESIGN.md §9) honours this by keeping every instrumentation site
// on the controlling thread: pool workers report through canonical
// per-block / per-tree slots that the controller folds (and traces)
// deterministically afterwards, which is also what keeps traces
// bit-identical across thread counts. Sanitized builds
// (GPU_MCTS_SANITIZE_ENABLED) enforce the affinity on every event;
// bind_to_current_thread() re-homes a tracer that was constructed on a
// different thread than the one driving the search.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <initializer_list>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/clock.hpp"

namespace gpu_mcts::obs {

/// One named numeric attachment on an event (kernel geometry, ply counts...).
struct Arg {
  const char* name = "";
  double value = 0.0;
};

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kBegin = 0,   ///< span opens on its track
    kEnd,         ///< span closes (innermost open span, matching name)
    kInstant,     ///< point event
    kCounter,     ///< sampled value (renders as a counter series)
  };
  static constexpr std::size_t kMaxArgs = 4;

  Kind kind = Kind::kInstant;
  /// Track (timeline) the event belongs to.
  std::uint16_t track = 0;
  /// Index of the search (begin_search call) that emitted the event.
  std::uint32_t search = 0;
  /// Virtual-clock timestamp, in cycles of the emitting timeline.
  std::uint64_t cycles = 0;
  const char* name = "";
  /// Counter value (kCounter only).
  double value = 0.0;
  std::uint8_t arg_count = 0;
  std::array<Arg, kMaxArgs> args{};
};

/// Collects trace events on named tracks and owns the MetricsRegistry.
/// One Tracer instruments one subject (searcher); attach with
/// `searcher.set_tracer(&tracer)` and export through obs/sinks.hpp.
class Tracer {
 public:
  /// Track 0 always exists: the controlling host CPU's timeline.
  static constexpr int kHostTrack = 0;
  static constexpr std::size_t kDefaultMaxEventsPerTrack = 1u << 18;

  Tracer() { tracks_.emplace_back("host"); }

  /// Returns the id of the named track, creating it on first use.
  [[nodiscard]] int track(const std::string& name) {
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
      if (tracks_[i].name == name) return static_cast<int>(i);
    }
    util::check(tracks_.size() < (1u << 16), "trace track count bounded");
    tracks_.emplace_back(name);
    return static_cast<int>(tracks_.size() - 1);
  }

  /// Opens a new search epoch: subsequent events are stamped with its index
  /// (exports separate epochs so successive choose_move calls, whose virtual
  /// clocks each restart at zero, do not overlap). Returns the epoch index.
  std::uint32_t begin_search(const std::string& label) {
    current_search_ = static_cast<std::uint32_t>(search_labels_.size());
    search_labels_.push_back(label);
    return current_search_;
  }

  [[nodiscard]] std::uint32_t searches() const noexcept {
    return static_cast<std::uint32_t>(search_labels_.size());
  }
  [[nodiscard]] const std::vector<std::string>& search_labels()
      const noexcept {
    return search_labels_;
  }

  /// Nominal frequency used by sinks to convert cycles to seconds; searchers
  /// set it from their host clock at search start.
  void set_frequency(double hz) noexcept {
    if (hz > 0.0) frequency_hz_ = hz;
  }
  [[nodiscard]] double frequency_hz() const noexcept { return frequency_hz_; }

  void begin(int track_id, const char* name, std::uint64_t cycles,
             std::initializer_list<Arg> args = {}) {
    Track& t = track_at(track_id);
    t.open.push_back(name);
    push(t, make_event(TraceEvent::Kind::kBegin, track_id, cycles, name, 0.0,
                       args));
  }

  /// Closes the innermost open span on the track; `name` must match it
  /// (spans nest strictly per track — enforced, so exports are well-formed).
  void end(int track_id, const char* name, std::uint64_t cycles) {
    Track& t = track_at(track_id);
    util::check(!t.open.empty(), "span end without matching begin");
    util::check(std::strcmp(t.open.back(), name) == 0,
                "span end name matches innermost open span");
    t.open.pop_back();
    push(t, make_event(TraceEvent::Kind::kEnd, track_id, cycles, name, 0.0,
                       {}));
  }

  void instant(int track_id, const char* name, std::uint64_t cycles,
               std::initializer_list<Arg> args = {}) {
    push(track_at(track_id),
         make_event(TraceEvent::Kind::kInstant, track_id, cycles, name, 0.0,
                    args));
  }

  void counter(int track_id, const char* name, std::uint64_t cycles,
               double value) {
    push(track_at(track_id),
         make_event(TraceEvent::Kind::kCounter, track_id, cycles, name, value,
                    {}));
  }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  [[nodiscard]] std::size_t track_count() const noexcept {
    return tracks_.size();
  }
  [[nodiscard]] const std::string& track_name(int track_id) const {
    return tracks_.at(static_cast<std::size_t>(track_id)).name;
  }
  [[nodiscard]] const std::vector<TraceEvent>& track_events(
      int track_id) const {
    return tracks_.at(static_cast<std::size_t>(track_id)).events;
  }

  /// Events emitted (including dropped ones) and records actually dropped.
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    std::uint64_t n = 0;
    for (const Track& t : tracks_) n += t.emitted;
    return n;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    std::uint64_t n = 0;
    for (const Track& t : tracks_) n += t.dropped;
    return n;
  }

  void set_max_events_per_track(std::size_t cap) noexcept {
    max_events_per_track_ = cap;
  }

  /// Re-homes the tracer onto the calling thread (for subjects driven from a
  /// different thread than the one that constructed the tracer). Only the
  /// owning thread may emit events; sanitized builds enforce this.
  void bind_to_current_thread() noexcept {
    owner_ = std::this_thread::get_id();
  }

  /// All events in a deterministic total order: ascending (cycles, track,
  /// per-track sequence). A pure function of the emitted events — stable
  /// across runs and hosts, which is what makes trace diffs meaningful.
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  /// Drops events, epochs, and metrics; keeps tracks (ids stay valid).
  void clear() {
    for (Track& t : tracks_) {
      t.events.clear();
      t.open.clear();
      t.emitted = 0;
      t.dropped = 0;
    }
    search_labels_.clear();
    current_search_ = 0;
    metrics_.clear();
  }

 private:
  struct Track {
    explicit Track(std::string track_name) : name(std::move(track_name)) {}
    std::string name;
    std::vector<TraceEvent> events;
    /// Stack of open span names (nesting enforcement; maintained even when
    /// the buffer is full so pairing checks survive truncation).
    std::vector<const char*> open;
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
  };

  [[nodiscard]] Track& track_at(int track_id) {
#ifdef GPU_MCTS_SANITIZE_ENABLED
    // Catch cross-thread emission in sanitized builds: the tracer's buffers
    // are unsynchronized by design (events must land in deterministic
    // program order), so any off-owner emission is a correctness bug, not
    // merely a race.
    util::check(std::this_thread::get_id() == owner_,
                "trace events must come from the owning thread");
#endif
    util::check(track_id >= 0 &&
                    static_cast<std::size_t>(track_id) < tracks_.size(),
                "trace event on an existing track");
    return tracks_[static_cast<std::size_t>(track_id)];
  }

  [[nodiscard]] TraceEvent make_event(TraceEvent::Kind kind, int track_id,
                                      std::uint64_t cycles, const char* name,
                                      double value,
                                      std::initializer_list<Arg> args) const {
    TraceEvent e;
    e.kind = kind;
    e.track = static_cast<std::uint16_t>(track_id);
    e.search = current_search_;
    e.cycles = cycles;
    e.name = name;
    e.value = value;
    for (const Arg& a : args) {
      if (e.arg_count >= TraceEvent::kMaxArgs) break;
      e.args[e.arg_count++] = a;
    }
    return e;
  }

  void push(Track& t, const TraceEvent& e) {
    ++t.emitted;
    if (t.events.size() >= max_events_per_track_) {
      ++t.dropped;
      return;
    }
    t.events.push_back(e);
  }

  // deque: track() may grow the container while other tracks' buffers are
  // being appended; deque never relocates existing elements.
  std::deque<Track> tracks_;
  /// The only thread allowed to emit events (see bind_to_current_thread).
  std::thread::id owner_ = std::this_thread::get_id();
  std::vector<std::string> search_labels_;
  std::uint32_t current_search_ = 0;
  double frequency_hz_ = 1.0e9;
  std::size_t max_events_per_track_ = kDefaultMaxEventsPerTrack;
  MetricsRegistry metrics_;
};

/// RAII span tied to a virtual clock: begins on construction, ends (at the
/// clock's *current* cycle) on destruction — so spans close correctly even
/// when the body throws (GPU transfer faults). Null tracer = no-op, letting
/// instrumentation sites stay single statements on the disabled path.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, int track_id, const char* name,
             const util::VirtualClock& clock,
             std::initializer_list<Arg> args = {})
      : tracer_(tracer), track_(track_id), name_(name), clock_(clock) {
    if (tracer_ != nullptr) tracer_->begin(track_, name_, clock_.cycles(), args);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(track_, name_, clock_.cycles());
  }

 private:
  Tracer* tracer_;
  int track_;
  const char* name_;
  const util::VirtualClock& clock_;
};

}  // namespace gpu_mcts::obs
