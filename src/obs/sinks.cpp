#include "obs/sinks.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <tuple>
#include <vector>

namespace gpu_mcts::obs {

namespace {

/// JSON string escaping for the small, ASCII-dominated names we emit.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Round-trippable double formatting ("%.17g" without trailing noise for
/// integral values, which most cycle-derived numbers are).
std::string json_number(double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

const char* kind_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kBegin: return "begin";
    case TraceEvent::Kind::kEnd: return "end";
    case TraceEvent::Kind::kInstant: return "instant";
    case TraceEvent::Kind::kCounter: return "counter";
  }
  return "instant";
}

void write_args_object(std::ostream& os, const TraceEvent& e) {
  os << ",\"args\":{";
  for (std::uint8_t a = 0; a < e.arg_count; ++a) {
    if (a > 0) os << ',';
    os << '"' << json_escape(e.args[a].name)
       << "\":" << json_number(e.args[a].value);
  }
  os << '}';
}

}  // namespace

void write_jsonl(const Tracer& tracer, std::ostream& os) {
  os << "{\"type\":\"meta\",\"version\":" << kTraceSchemaVersion
     << ",\"clock_hz\":" << json_number(tracer.frequency_hz())
     << ",\"tracks\":" << tracer.track_count()
     << ",\"searches\":" << tracer.searches() << "}\n";
  for (std::size_t t = 0; t < tracer.track_count(); ++t) {
    os << "{\"type\":\"track\",\"track\":" << t << ",\"name\":\""
       << json_escape(tracer.track_name(static_cast<int>(t))) << "\"}\n";
  }
  const auto& labels = tracer.search_labels();
  for (std::size_t s = 0; s < labels.size(); ++s) {
    os << "{\"type\":\"search\",\"search\":" << s << ",\"label\":\""
       << json_escape(labels[s]) << "\"}\n";
  }
  for (const TraceEvent& e : tracer.merged()) {
    os << "{\"type\":\"" << kind_string(e.kind) << "\",\"search\":" << e.search
       << ",\"track\":" << e.track << ",\"t\":" << e.cycles << ",\"name\":\""
       << json_escape(e.name) << '"';
    if (e.kind == TraceEvent::Kind::kCounter) {
      os << ",\"value\":" << json_number(e.value);
    }
    if (e.arg_count > 0) write_args_object(os, e);
    os << "}\n";
  }
  const MetricsRegistry& m = tracer.metrics();
  for (const auto& [name, c] : m.counters()) {
    os << "{\"type\":\"metric\",\"kind\":\"counter\",\"name\":\""
       << json_escape(name) << "\",\"value\":" << c.value() << "}\n";
  }
  for (const auto& [name, g] : m.gauges()) {
    os << "{\"type\":\"metric\",\"kind\":\"gauge\",\"name\":\""
       << json_escape(name) << "\",\"value\":" << json_number(g.value())
       << "}\n";
  }
  for (const auto& [name, h] : m.histograms()) {
    os << "{\"type\":\"metric\",\"kind\":\"histogram\",\"name\":\""
       << json_escape(name) << "\",\"count\":" << h.count()
       << ",\"sum\":" << json_number(h.sum())
       << ",\"min\":" << json_number(h.min())
       << ",\"max\":" << json_number(h.max()) << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) os << ',';
      os << json_number(h.bounds()[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
      if (i > 0) os << ',';
      os << h.bucket_counts()[i];
    }
    os << "]}\n";
  }
  os << "{\"type\":\"end_of_trace\",\"events\":" << tracer.emitted()
     << ",\"dropped\":" << tracer.dropped() << "}\n";
}

void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  const double us_per_cycle = 1.0e6 / tracer.frequency_hz();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) os << ',';
    first = false;
    os << '\n' << line;
  };

  // Process (= search epoch) and thread (= track) naming metadata.
  const auto& labels = tracer.search_labels();
  const std::size_t searches = labels.empty() ? 1 : labels.size();
  for (std::size_t s = 0; s < searches; ++s) {
    const std::string label =
        s < labels.size() ? labels[s] : std::string("search");
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(s) +
         ",\"name\":\"process_name\",\"args\":{\"name\":\"search " +
         std::to_string(s) + ": " + json_escape(label) + "\"}}");
    for (std::size_t t = 0; t < tracer.track_count(); ++t) {
      emit("{\"ph\":\"M\",\"pid\":" + std::to_string(s) +
           ",\"tid\":" + std::to_string(t) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(tracer.track_name(static_cast<int>(t))) + "\"}}");
    }
  }

  for (const TraceEvent& e : tracer.merged()) {
    const double ts = static_cast<double>(e.cycles) * us_per_cycle;
    std::string line = "{\"ph\":\"";
    switch (e.kind) {
      case TraceEvent::Kind::kBegin: line += 'B'; break;
      case TraceEvent::Kind::kEnd: line += 'E'; break;
      case TraceEvent::Kind::kInstant: line += 'i'; break;
      case TraceEvent::Kind::kCounter: line += 'C'; break;
    }
    line += "\",\"pid\":" + std::to_string(e.search) +
            ",\"tid\":" + std::to_string(e.track) +
            ",\"ts\":" + json_number(ts) + ",\"name\":\"" +
            json_escape(e.name) + '"';
    if (e.kind == TraceEvent::Kind::kInstant) line += ",\"s\":\"t\"";
    if (e.kind == TraceEvent::Kind::kCounter) {
      line += ",\"args\":{\"value\":" + json_number(e.value) + '}';
    } else if (e.arg_count > 0) {
      line += ",\"args\":{";
      for (std::uint8_t a = 0; a < e.arg_count; ++a) {
        if (a > 0) line += ',';
        line += '"' + json_escape(e.args[a].name) +
                "\":" + json_number(e.args[a].value);
      }
      line += '}';
    }
    line += '}';
    emit(line);
  }
  os << "\n]}\n";
}

util::Table phase_table(const Tracer& tracer) {
  // Inclusive span time per (track, phase) across all searches, recovered by
  // replaying begin/end pairs per track (per-track events are well nested —
  // the Tracer enforces it at emission).
  struct PhaseTotal {
    std::uint64_t spans = 0;
    std::uint64_t cycles = 0;
  };
  std::map<std::pair<std::uint16_t, std::string>, PhaseTotal> totals;
  std::map<std::uint16_t, std::uint64_t> track_cycles;
  std::vector<std::vector<std::pair<const char*, std::uint64_t>>> stacks(
      tracer.track_count());
  for (const TraceEvent& e : tracer.merged()) {
    auto& stack = stacks[e.track];
    if (e.kind == TraceEvent::Kind::kBegin) {
      stack.push_back({e.name, e.cycles});
    } else if (e.kind == TraceEvent::Kind::kEnd && !stack.empty()) {
      const auto [name, begin_cycles] = stack.back();
      stack.pop_back();
      PhaseTotal& pt = totals[{e.track, name}];
      pt.spans += 1;
      const std::uint64_t d =
          e.cycles >= begin_cycles ? e.cycles - begin_cycles : 0;
      pt.cycles += d;
      // Top-level spans only: nested time already counts toward the parent.
      if (stack.empty()) track_cycles[e.track] += d;
    }
  }

  util::Table table({"track", "phase", "spans", "virtual_ms", "track_share"});
  const double ms_per_cycle = 1.0e3 / tracer.frequency_hz();
  for (const auto& [key, pt] : totals) {
    const auto& [track, name] = key;
    const double track_total =
        static_cast<double>(track_cycles.count(track) ? track_cycles[track] : 0);
    table.begin_row()
        .add(tracer.track_name(static_cast<int>(track)))
        .add(name)
        .add(static_cast<unsigned long long>(pt.spans))
        .add(static_cast<double>(pt.cycles) * ms_per_cycle, 3)
        .add(track_total > 0.0
                 ? static_cast<double>(pt.cycles) / track_total
                 : 0.0,
             3);
  }
  return table;
}

util::Table metrics_table(const MetricsRegistry& metrics) {
  util::Table table({"metric", "kind", "count", "value/sum", "mean", "max"});
  for (const auto& [name, c] : metrics.counters()) {
    table.begin_row()
        .add(name)
        .add("counter")
        .add("-")
        .add(static_cast<unsigned long long>(c.value()))
        .add("-")
        .add("-");
  }
  for (const auto& [name, g] : metrics.gauges()) {
    table.begin_row()
        .add(name)
        .add("gauge")
        .add("-")
        .add(g.value(), 3)
        .add("-")
        .add("-");
  }
  for (const auto& [name, h] : metrics.histograms()) {
    table.begin_row()
        .add(name)
        .add("histogram")
        .add(static_cast<unsigned long long>(h.count()))
        .add(h.sum(), 3)
        .add(h.mean(), 3)
        .add(h.max(), 3);
  }
  return table;
}

void print_summary(const Tracer& tracer, std::ostream& os) {
  os << "-- per-phase virtual time --\n";
  phase_table(tracer).print(os);
  if (!tracer.metrics().empty()) {
    os << "\n-- metrics --\n";
    metrics_table(tracer.metrics()).print(os);
  }
  if (tracer.dropped() > 0) {
    os << "\n(" << tracer.dropped()
       << " events dropped at the per-track buffer cap)\n";
  }
}

}  // namespace gpu_mcts::obs
