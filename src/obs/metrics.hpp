// MetricsRegistry: the aggregate half of the observability layer
// (DESIGN.md §8) — named counters, gauges, and histograms that survive
// across kernel rounds, moves, and whole matches, where trace events would
// be too voluminous (e.g. one histogram observation per playout).
//
// Deterministic: registries iterate in lexicographic name order, histogram
// buckets are fixed at creation, and no wall-clock or host state enters any
// value — so exported metrics are bit-reproducible alongside the trace.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace gpu_mcts::obs {

/// Monotonically increasing count (simulations, kernel rounds, faults...).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (current tree count, configured block size...).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges; one overflow
/// bucket catches everything above the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)),
        counts_(bounds_.size() + 1, 0) {
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      util::expects(bounds_[i] > bounds_[i - 1],
                    "histogram bounds strictly increasing");
    }
  }

  void observe(double v) noexcept {
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    counts_[b] += 1;
    count_ += 1;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }

  void reset() noexcept {
    for (auto& c : counts_) c = 0;
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Bucket edges suited to playout lengths / per-round counts in this repo's
/// games (Reversi playouts run ~45-70 plies from the opening).
[[nodiscard]] inline std::vector<double> default_histogram_bounds() {
  return {1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 256};
}

/// Name-keyed registry. Lookup creates on first use; re-lookup returns the
/// same instrument, so call sites stay one-liners:
///   metrics.counter("gpu_simulations").add(n);
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) {
    return counters_.try_emplace(name).first->second;
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) {
    return gauges_.try_emplace(name).first->second;
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histogram(name, default_histogram_bounds());
  }
  /// Bounds apply on first creation only; later lookups reuse the original.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> upper_bounds) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
        .first->second;
  }

  // Deterministic (name-ordered) iteration for sinks.
  [[nodiscard]] const std::map<std::string, Counter>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Zeroes every instrument but keeps registrations (bucket layouts).
  void clear() noexcept {
    for (auto& [name, c] : counters_) c.reset();
    for (auto& [name, g] : gauges_) g.reset();
    for (auto& [name, h] : histograms_) h.reset();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace gpu_mcts::obs
