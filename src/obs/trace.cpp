#include "obs/trace.hpp"

#include <algorithm>
#include <tuple>

namespace gpu_mcts::obs {

std::vector<TraceEvent> Tracer::merged() const {
  // Tag every event with its per-track sequence number so ties (zero-length
  // spans, simultaneous cross-track events) break identically on every run.
  struct Keyed {
    TraceEvent event;
    std::uint32_t seq;
  };
  std::vector<Keyed> keyed;
  std::size_t total = 0;
  for (const Track& t : tracks_) total += t.events.size();
  keyed.reserve(total);
  for (const Track& t : tracks_) {
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      keyed.push_back({t.events[i], static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    return std::tuple(a.event.search, a.event.cycles, a.event.track, a.seq) <
           std::tuple(b.event.search, b.event.cycles, b.event.track, b.seq);
  });
  std::vector<TraceEvent> out;
  out.reserve(keyed.size());
  for (const Keyed& k : keyed) out.push_back(k.event);
  return out;
}

}  // namespace gpu_mcts::obs
