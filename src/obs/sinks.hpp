// Trace/metric sinks (DESIGN.md §8):
//  * write_jsonl       — one JSON object per line, stable schema v1; the
//                        machine-readable export (validated by obs/schema.hpp
//                        and the trace_validate tool in CI).
//  * write_chrome_trace — Chrome trace_event JSON; open in chrome://tracing
//                        or https://ui.perfetto.dev to see per-phase spans,
//                        CPU/GPU overlap, and counter series on a timeline.
//  * phase_table /     — human-readable per-search summaries: virtual time
//    metrics_table       per phase per track, and every registered metric.
#pragma once

#include <iosfwd>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace gpu_mcts::obs {

/// Current JSONL schema version (the "version" field of the meta line).
inline constexpr int kTraceSchemaVersion = 1;

/// Writes the full trace as JSONL: a meta line, one line per track, one line
/// per search epoch, every event in deterministic merged order, one line per
/// metric, and an end_of_trace trailer with exact emitted/dropped counts.
void write_jsonl(const Tracer& tracer, std::ostream& os);

/// Writes the trace in Chrome trace_event format. Searches map to processes
/// (pid = search index, named by their label), tracks map to threads, and
/// timestamps are virtual microseconds (cycles / frequency_hz * 1e6).
void write_chrome_trace(const Tracer& tracer, std::ostream& os);

/// Per-phase virtual-time totals: one row per (track, span name) with span
/// count, total virtual milliseconds, and share of the track's span time.
[[nodiscard]] util::Table phase_table(const Tracer& tracer);

/// One row per registered metric (counters, gauges, then histograms).
[[nodiscard]] util::Table metrics_table(const MetricsRegistry& metrics);

/// Convenience: prints phase_table and metrics_table with headers.
void print_summary(const Tracer& tracer, std::ostream& os);

}  // namespace gpu_mcts::obs
