#include "obs/schema.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <istream>

#include "mcts/budget.hpp"

namespace gpu_mcts::obs {

namespace {

/// Recursive-descent JSON parser over a single line. Scope-limited on
/// purpose: no \uXXXX surrogate pairs beyond basic BMP decoding to UTF-8,
/// and a shallow recursion cap — trace lines are flat objects with at most
/// one nested object/array level.
class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : s_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 16;

  bool fail(const std::string& msg) {
    error_ = msg + " (offset " + std::to_string(pos_) + ")";
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string str;
        if (!parse_string(str)) return false;
        out.v = std::move(str);
        return true;
      }
      case 't':
        if (!consume_literal("true")) return false;
        out.v = true;
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        out.v = false;
        return true;
      case 'n':
        if (!consume_literal("null")) return false;
        out.v = nullptr;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object obj;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      out.v = std::move(obj);
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      obj.emplace(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out.v = std::move(obj);
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    JsonValue::Array arr;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      out.v = std::move(arr);
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      arr.push_back(std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out.v = std::move(arr);
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid hex digit in \\u escape");
          }
          // Basic-plane code points only (all we ever emit); encode UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("invalid number");
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required after decimal point");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required in exponent");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    out.v = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }

  const std::string& s_;
  std::string& error_;
  std::size_t pos_ = 0;
};

// --- schema-v1 field checks -------------------------------------------------

const JsonValue* find(const JsonValue::Object& obj, const std::string& key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

bool require_number(const JsonValue::Object& obj, const std::string& key,
                    std::string& error, double* out = nullptr) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || !v->is_number()) {
    error = "missing or non-numeric field \"" + key + '"';
    return false;
  }
  if (out != nullptr) *out = v->number();
  return true;
}

bool require_nonneg_int(const JsonValue::Object& obj, const std::string& key,
                        std::string& error, double* out = nullptr) {
  double v = 0.0;
  if (!require_number(obj, key, error, &v)) return false;
  if (v < 0.0 || v != std::floor(v)) {
    error = "field \"" + key + "\" must be a non-negative integer";
    return false;
  }
  if (out != nullptr) *out = v;
  return true;
}

bool require_string(const JsonValue::Object& obj, const std::string& key,
                    std::string& error, std::string* out = nullptr) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || !v->is_string()) {
    error = "missing or non-string field \"" + key + '"';
    return false;
  }
  if (out != nullptr) *out = v->string();
  return true;
}

bool require_number_array(const JsonValue::Object& obj, const std::string& key,
                          std::string& error, std::size_t* size_out = nullptr) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || !v->is_array()) {
    error = "missing or non-array field \"" + key + '"';
    return false;
  }
  for (const JsonValue& item : v->array()) {
    if (!item.is_number()) {
      error = "array field \"" + key + "\" must contain only numbers";
      return false;
    }
  }
  if (size_out != nullptr) *size_out = v->array().size();
  return true;
}

bool check_in_range(double value, std::size_t limit, const std::string& key,
                    std::string& error) {
  // limit 0 means "count unknown" (single-line validation): skip the check.
  if (limit > 0 && value >= static_cast<double>(limit)) {
    error = "field \"" + key + "\" (" + std::to_string(
                static_cast<long long>(value)) +
            ") out of range; " + std::to_string(limit) + " declared";
    return false;
  }
  return true;
}

bool validate_event_line(const JsonValue::Object& obj, const std::string& type,
                         std::size_t tracks, std::size_t searches,
                         std::string& error) {
  double track = 0.0;
  double search = 0.0;
  std::string name;
  if (!require_nonneg_int(obj, "search", error, &search)) return false;
  if (!require_nonneg_int(obj, "track", error, &track)) return false;
  if (!require_nonneg_int(obj, "t", error)) return false;
  if (!require_string(obj, "name", error, &name)) return false;
  if (!check_in_range(track, tracks, "track", error)) return false;
  if (!check_in_range(search, searches, "search", error)) return false;
  if (type == "counter" && !require_number(obj, "value", error)) return false;
  const JsonValue* args = find(obj, "args");
  if (args != nullptr) {
    if (!args->is_object()) {
      error = "field \"args\" must be an object";
      return false;
    }
    for (const auto& [key, value] : args->object()) {
      if (!value.is_number()) {
        error = "args entry \"" + key + "\" must be numeric";
        return false;
      }
    }
  }
  if (type == "instant" && name == "stop_reason") {
    // Supervised searches (DESIGN.md §12) record why they returned as an
    // instant carrying the StopReason enum; pin the encoding so enum drift
    // (or a garbage value) fails validation instead of silently shipping.
    if (args == nullptr || !args->is_object()) {
      error = "\"stop_reason\" instant requires an args object";
      return false;
    }
    const JsonValue* reason = find(args->object(), "reason");
    if (reason == nullptr || !reason->is_number()) {
      error = "\"stop_reason\" instant requires numeric args.reason";
      return false;
    }
    const double r = reason->number();
    if (r != std::floor(r) || r < 0.0 ||
        r >= static_cast<double>(mcts::kStopReasons)) {
      error = "args.reason (" + std::to_string(r) + ") is not a StopReason";
      return false;
    }
  }
  return true;
}

bool validate_metric_line(const JsonValue::Object& obj, std::string& error) {
  std::string kind;
  if (!require_string(obj, "kind", error, &kind)) return false;
  if (!require_string(obj, "name", error)) return false;
  if (kind == "counter" || kind == "gauge") {
    return require_number(obj, "value", error);
  }
  if (kind == "histogram") {
    if (!require_nonneg_int(obj, "count", error)) return false;
    if (!require_number(obj, "sum", error)) return false;
    if (!require_number(obj, "min", error)) return false;
    if (!require_number(obj, "max", error)) return false;
    std::size_t bounds = 0;
    std::size_t counts = 0;
    if (!require_number_array(obj, "bounds", error, &bounds)) return false;
    if (!require_number_array(obj, "counts", error, &counts)) return false;
    if (counts != bounds + 1) {
      error = "histogram \"counts\" must have bounds+1 entries";
      return false;
    }
    return true;
  }
  error = "unknown metric kind \"" + kind + '"';
  return false;
}

struct LineVerdict {
  bool ok = false;
  std::string type;
};

LineVerdict validate_line_impl(const std::string& line, std::size_t tracks,
                               std::size_t searches, std::string& error) {
  JsonValue doc;
  if (!parse_json(line, doc, error)) return {};
  if (!doc.is_object()) {
    error = "line is not a JSON object";
    return {};
  }
  const JsonValue::Object& obj = doc.object();
  std::string type;
  if (!require_string(obj, "type", error, &type)) return {};
  LineVerdict verdict{false, type};

  if (type == "meta") {
    double version = 0.0;
    if (!require_nonneg_int(obj, "version", error, &version)) return verdict;
    if (version != 1.0) {
      error = "unsupported schema version " +
              std::to_string(static_cast<long long>(version));
      return verdict;
    }
    double hz = 0.0;
    if (!require_number(obj, "clock_hz", error, &hz)) return verdict;
    if (hz <= 0.0) {
      error = "\"clock_hz\" must be positive";
      return verdict;
    }
    if (!require_nonneg_int(obj, "tracks", error)) return verdict;
    if (!require_nonneg_int(obj, "searches", error)) return verdict;
  } else if (type == "track") {
    double track = 0.0;
    if (!require_nonneg_int(obj, "track", error, &track)) return verdict;
    if (!require_string(obj, "name", error)) return verdict;
    if (!check_in_range(track, tracks, "track", error)) return verdict;
  } else if (type == "search") {
    double search = 0.0;
    if (!require_nonneg_int(obj, "search", error, &search)) return verdict;
    if (!require_string(obj, "label", error)) return verdict;
    if (!check_in_range(search, searches, "search", error)) return verdict;
  } else if (type == "begin" || type == "end" || type == "instant" ||
             type == "counter") {
    if (!validate_event_line(obj, type, tracks, searches, error)) {
      return verdict;
    }
  } else if (type == "metric") {
    if (!validate_metric_line(obj, error)) return verdict;
  } else if (type == "end_of_trace") {
    if (!require_nonneg_int(obj, "events", error)) return verdict;
    if (!require_nonneg_int(obj, "dropped", error)) return verdict;
  } else {
    error = "unknown line type \"" + type + '"';
    return verdict;
  }
  verdict.ok = true;
  return verdict;
}

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, std::string& error) {
  Parser parser(text, error);
  return parser.parse(out);
}

bool validate_trace_line(const std::string& line, std::size_t tracks,
                         std::size_t searches, std::string& error) {
  return validate_line_impl(line, tracks, searches, error).ok;
}

ValidationResult validate_trace_stream(std::istream& in) {
  ValidationResult result;
  std::size_t tracks = 0;
  std::size_t searches = 0;
  bool saw_meta = false;
  bool saw_trailer = false;
  std::string line;
  const auto fail = [&](const std::string& message) {
    result.ok = false;
    result.line = result.lines;
    result.error = message;
    return result;
  };

  while (std::getline(in, line)) {
    ++result.lines;
    if (line.empty()) return fail("empty line");
    if (saw_trailer) return fail("content after end_of_trace");
    std::string error;
    const LineVerdict verdict =
        validate_line_impl(line, tracks, searches, error);
    if (!verdict.ok) return fail(error);
    if (verdict.type == "meta") {
      if (saw_meta) return fail("duplicate meta line");
      if (result.lines != 1) return fail("meta line must come first");
      saw_meta = true;
      // Re-parse to pull the declared counts for downstream range checks.
      JsonValue doc;
      std::string ignored;
      if (parse_json(line, doc, ignored) && doc.is_object()) {
        if (const JsonValue* v = find(doc.object(), "tracks");
            v != nullptr && v->is_number()) {
          tracks = static_cast<std::size_t>(v->number());
        }
        if (const JsonValue* v = find(doc.object(), "searches");
            v != nullptr && v->is_number()) {
          searches = static_cast<std::size_t>(v->number());
        }
      }
    } else {
      if (!saw_meta) return fail("first line must be a meta line");
      if (verdict.type == "end_of_trace") {
        saw_trailer = true;
        // The trailer's declared event count must match what the stream
        // actually carried — a mismatch means the trace was truncated or
        // edited after the fact.
        JsonValue doc;
        std::string ignored;
        if (parse_json(line, doc, ignored) && doc.is_object()) {
          if (const JsonValue* v = find(doc.object(), "events");
              v != nullptr && v->is_number() &&
              static_cast<std::size_t>(v->number()) != result.events) {
            return fail("end_of_trace declares " +
                        std::to_string(static_cast<std::size_t>(v->number())) +
                        " events but the stream carries " +
                        std::to_string(result.events));
          }
        }
      }
      if (verdict.type == "begin" || verdict.type == "end" ||
          verdict.type == "instant" || verdict.type == "counter") {
        ++result.events;
      }
    }
  }
  if (!saw_meta) return fail("trace is empty (no meta line)");
  if (!saw_trailer) return fail("missing end_of_trace trailer");
  return result;
}

}  // namespace gpu_mcts::obs
