#include "reversi/endgame.hpp"

#include <algorithm>
#include <array>

#include "reversi/bitboard.hpp"
#include "util/check.hpp"

namespace gpu_mcts::reversi {

namespace {

/// Corner-first move ordering: corners are usually best, and tightening
/// alpha early is what makes alpha-beta effective.
constexpr Bitboard kCornerMask =
    square_bit(0) | square_bit(7) | square_bit(56) | square_bit(63);

struct Solver {
  std::uint64_t nodes = 0;

  /// Negamax with fail-soft alpha-beta; exact empties-to-winner score from
  /// the side to move. Terminality is detected from mobility of both sides,
  /// so pass chains need no extra state.
  int search(const Position& p, int alpha, int beta) {
    ++nodes;
    const Bitboard mask = placement_mask(p);
    if (mask == 0) {
      if (legal_moves_mask(p.opp(), p.own()) == 0) {
        return final_score(p, static_cast<game::Player>(p.to_move));
      }
      return -search(apply_move(p, kPassMove), -beta, -alpha);
    }

    int best = -65;
    // Visit corners before everything else.
    for (const Bitboard subset : {mask & kCornerMask, mask & ~kCornerMask}) {
      Bitboard remaining = subset;
      while (remaining != 0) {
        const int square = pop_lsb(remaining);
        const int value =
            -search(apply_move(p, static_cast<Move>(square)), -beta, -alpha);
        best = std::max(best, value);
        if (best >= beta) return best;  // cutoff
        alpha = std::max(alpha, best);
      }
    }
    return best;
  }
};

}  // namespace

SolveResult solve_endgame(const Position& position, int max_empties) {
  const int empties = popcount(position.empty());
  util::expects(empties <= max_empties,
                "position has too many empties for exact solving");

  SolveResult result;
  if (is_terminal(position)) {
    result.score =
        final_score(position, static_cast<game::Player>(position.to_move));
    return result;
  }

  Solver solver;
  std::array<Move, 34> moves{};
  const int n = legal_moves(position, std::span(moves));
  util::check(n > 0, "non-terminal position has moves");

  int best = -65;
  for (int i = 0; i < n; ++i) {
    const int value =
        -solver.search(apply_move(position, moves[i]), -64, -best);
    if (value > best) {
      best = value;
      result.best_move = moves[i];
    }
  }
  result.score = best;
  result.nodes = solver.nodes;
  return result;
}

}  // namespace gpu_mcts::reversi
