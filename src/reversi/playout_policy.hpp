// Reversi-specific playout knowledge: the classic corner heuristic.
//
//  * Corners (a1, h1, a8, h8) are stable and dominate Reversi strategy —
//    take one whenever legal.
//  * X-squares (b2, g2, b7, g7) hand the adjacent corner to the opponent —
//    avoid them while any alternative exists.
//  * Otherwise play uniformly at random (keeping playouts cheap and
//    unbiased enough for Monte Carlo evaluation).
//
// Exposed as a PlayoutPolicy for mcts::policy_playout; ablation_playout
// measures its effect against the paper's uniform playouts.
#pragma once

#include <cstdint>
#include <span>

#include "reversi/bitboard.hpp"
#include "reversi/position.hpp"

namespace gpu_mcts::reversi {

inline constexpr Bitboard kCorners =
    square_bit(0) | square_bit(7) | square_bit(56) | square_bit(63);

/// b2, g2, b7, g7 — the diagonal neighbours of the corners.
inline constexpr Bitboard kXSquares =
    square_bit(square_at(1, 1)) | square_bit(square_at(6, 1)) |
    square_bit(square_at(1, 6)) | square_bit(square_at(6, 6));

struct CornerGreedyPolicy {
  template <typename G, typename Rng>
  [[nodiscard]] int pick(const typename G::State& state,
                         std::span<const typename G::Move> moves,
                         Rng& rng) const {
    (void)state;
    // 1. Any corner available? Take the first (they are interchangeable in
    //    expectation and this keeps the policy branch-cheap).
    for (std::size_t i = 0; i < moves.size(); ++i) {
      if (moves[i] < kSquares && (square_bit(moves[i]) & kCorners) != 0) {
        return static_cast<int>(i);
      }
    }
    // 2. Prefer a uniformly random non-X-square move.
    int non_x_count = 0;
    for (const auto m : moves) {
      if (m >= kSquares || (square_bit(m) & kXSquares) == 0) ++non_x_count;
    }
    if (non_x_count > 0) {
      auto target = rng.next_below(static_cast<std::uint32_t>(non_x_count));
      for (std::size_t i = 0; i < moves.size(); ++i) {
        const bool is_x =
            moves[i] < kSquares && (square_bit(moves[i]) & kXSquares) != 0;
        if (is_x) continue;
        if (target == 0) return static_cast<int>(i);
        --target;
      }
    }
    // 3. Only X-squares left: uniform.
    return static_cast<int>(
        rng.next_below(static_cast<std::uint32_t>(moves.size())));
  }
};

}  // namespace gpu_mcts::reversi
