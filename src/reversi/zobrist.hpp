// Zobrist hashing for Reversi positions.
//
// Not required by plain MCTS (the paper's trees are not transposition-aware)
// but provided as part of a complete engine substrate: the harness uses it to
// detect repeated experiment positions and the tests use it as a cheap
// position identity. The key table is generated at compile time from a fixed
// seed so hashes are stable across runs and builds.
#pragma once

#include <array>
#include <cstdint>

#include "reversi/position.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::reversi {

namespace detail {

struct ZobristKeys {
  std::array<std::array<std::uint64_t, kSquares>, 2> squares{};
  std::uint64_t side = 0;
};

[[nodiscard]] constexpr ZobristKeys make_zobrist_keys() noexcept {
  ZobristKeys k;
  util::SplitMix64 rng(0x7ab1e5eedULL);
  for (auto& side : k.squares)
    for (auto& key : side) key = rng();
  k.side = rng();
  return k;
}

inline constexpr ZobristKeys kZobristKeys = make_zobrist_keys();

}  // namespace detail

class Zobrist {
 public:
  [[nodiscard]] static std::uint64_t hash(const Position& p) noexcept {
    std::uint64_t h = p.to_move == 0 ? 0 : side_key();
    Bitboard black = p.discs[0];
    while (black != 0) h ^= detail::kZobristKeys.squares[0][pop_lsb(black)];
    Bitboard white = p.discs[1];
    while (white != 0) h ^= detail::kZobristKeys.squares[1][pop_lsb(white)];
    return h;
  }

  /// Incremental update for a placement by `side` on `square` flipping
  /// `flips` (as returned by flips_for_move); also toggles the side key.
  [[nodiscard]] static std::uint64_t update(std::uint64_t h, int side,
                                            int square,
                                            Bitboard flips) noexcept {
    h ^= detail::kZobristKeys.squares[side][square];
    Bitboard f = flips;
    while (f != 0) {
      const int sq = pop_lsb(f);
      h ^= detail::kZobristKeys.squares[side][sq];
      h ^= detail::kZobristKeys.squares[1 - side][sq];
    }
    return h ^ side_key();
  }

  /// Incremental update for a pass: no discs change, only the side to move.
  /// Passes are ordinary moves in this engine (game_traits.hpp), but
  /// update() above is placement-shaped — before this existed, every
  /// incremental-hash consumer silently diverged from hash() at the first
  /// forced pass.
  [[nodiscard]] static constexpr std::uint64_t pass(std::uint64_t h) noexcept {
    return h ^ side_key();
  }

  [[nodiscard]] static constexpr std::uint64_t side_key() noexcept {
    return detail::kZobristKeys.side;
  }
};

}  // namespace gpu_mcts::reversi
