#include "reversi/perft.hpp"

#include <array>

namespace gpu_mcts::reversi {

std::uint64_t perft(const Position& p, int depth) {
  if (depth == 0) return 1;
  std::array<Move, 34> moves{};
  const int n = legal_moves(p, moves);
  if (n == 0) return 1;  // terminal: count the line once
  std::uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += perft(apply_move(p, moves[i]), depth - 1);
  }
  return total;
}

int perft_divide(const Position& p, int depth, std::span<PerftDivide> out) {
  std::array<Move, 34> moves{};
  const int n = legal_moves(p, moves);
  for (int i = 0; i < n; ++i) {
    out[i].move = moves[i];
    out[i].nodes = depth > 0 ? perft(apply_move(p, moves[i]), depth - 1) : 1;
  }
  return n;
}

}  // namespace gpu_mcts::reversi
