#include "reversi/notation.hpp"

#include <array>
#include <cctype>

namespace gpu_mcts::reversi {

std::string move_to_string(Move m) {
  if (m == kPassMove) return "--";
  if (m >= kSquares) return "??";
  std::string s(2, ' ');
  s[0] = static_cast<char>('a' + file_of(m));
  s[1] = static_cast<char>('1' + rank_of(m));
  return s;
}

std::optional<Move> move_from_string(std::string_view text) {
  if (text == "--" || text == "pass" || text == "PASS") return kPassMove;
  if (text.size() != 2) return std::nullopt;
  const char fc = static_cast<char>(std::tolower(text[0]));
  const char rc = text[1];
  if (fc < 'a' || fc > 'h' || rc < '1' || rc > '8') return std::nullopt;
  return static_cast<Move>(square_at(fc - 'a', rc - '1'));
}

std::string board_to_string(const Position& p, bool mark_legal) {
  const Bitboard legal = mark_legal ? placement_mask(p) : 0;
  std::string out;
  out.reserve(220);
  for (int rank = kBoardSize - 1; rank >= 0; --rank) {
    out.push_back(static_cast<char>('1' + rank));
    out.push_back(' ');
    for (int file = 0; file < kBoardSize; ++file) {
      const Bitboard bit = square_bit(square_at(file, rank));
      char c = '.';
      if (p.discs[0] & bit) c = 'X';
      else if (p.discs[1] & bit) c = 'O';
      else if (legal & bit) c = '*';
      out.push_back(c);
      out.push_back(' ');
    }
    out.push_back('\n');
  }
  out += "  a b c d e f g h\n";
  out += (p.to_move == 0) ? "X to move\n" : "O to move\n";
  return out;
}

std::string position_signature(const Position& p) {
  std::string out;
  for (int side = 0; side < 2; ++side) {
    out += side == 0 ? "X:" : " O:";
    Bitboard b = p.discs[side];
    bool first = true;
    while (b != 0) {
      if (!first) out.push_back(',');
      out += move_to_string(static_cast<Move>(pop_lsb(b)));
      first = false;
    }
  }
  out += p.to_move == 0 ? " X-to-move" : " O-to-move";
  return out;
}

std::optional<Position> position_from_diagram(std::string_view diagram,
                                              game::Player to_move) {
  Position p;
  p.discs[0] = 0;
  p.discs[1] = 0;
  p.to_move = static_cast<std::uint8_t>(game::index_of(to_move));
  int cell = 0;
  for (const char c : diagram) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (cell >= kSquares) return std::nullopt;
    switch (c) {
      case 'X': case 'x': p.discs[0] |= square_bit(cell); break;
      case 'O': case 'o': p.discs[1] |= square_bit(cell); break;
      case '.': case '-': break;
      default: return std::nullopt;
    }
    ++cell;
  }
  if (cell != kSquares) return std::nullopt;
  return p;
}

}  // namespace gpu_mcts::reversi
