// Classic Reversi opening lines.
//
// The arena can start games a few plies into a named (or randomly drawn)
// book line instead of the bare initial position: with deterministic,
// seeded players this is the standard way to get game variety in
// engine-vs-engine matches without biasing either side (both players see
// the same opening).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "reversi/position.hpp"

namespace gpu_mcts::reversi {

struct Opening {
  std::string_view name;
  /// Moves in algebraic notation from the initial position, space-separated.
  std::string_view line;
};

/// A small book of well-known named openings (diagonal / perpendicular /
/// parallel families and common continuations).
[[nodiscard]] std::span<const Opening> opening_book();

/// Finds an opening by (case-sensitive) name.
[[nodiscard]] std::optional<Opening> find_opening(std::string_view name);

/// Parses an opening line ("f5 d6 c3 ...") into moves; nullopt if any token
/// is malformed or any move is illegal from the resulting position.
[[nodiscard]] std::optional<std::vector<Move>> parse_line(
    std::string_view line);

/// Applies up to `max_plies` moves of the opening (whole line when
/// max_plies < 0). Returns nullopt for malformed/illegal lines.
[[nodiscard]] std::optional<Position> position_after(const Opening& opening,
                                                     int max_plies = -1);

}  // namespace gpu_mcts::reversi
