// Human-readable I/O for Reversi: algebraic square names ("d3"), move lists,
// and ASCII board rendering. Used by the examples and by test diagnostics.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "reversi/position.hpp"

namespace gpu_mcts::reversi {

/// "a1".."h8" for squares, "--" for pass.
[[nodiscard]] std::string move_to_string(Move m);

/// Parses "d3" / "D3" / "--" / "pass"; nullopt on malformed input.
[[nodiscard]] std::optional<Move> move_from_string(std::string_view text);

/// Multi-line ASCII board: X = black (player 0), O = white, '.' = empty,
/// '*' marks legal placements for the side to move.
[[nodiscard]] std::string board_to_string(const Position& p,
                                          bool mark_legal = true);

/// Compact one-line form "X:a1,b2 O:c3 X-to-move" used in test failure
/// messages.
[[nodiscard]] std::string position_signature(const Position& p);

/// Builds a position from a 64-char diagram (rank 8 first or rank 1 first is
/// ambiguous; we read rank 1 first, files a..h) of 'X', 'O', '.', whitespace
/// ignored. Returns nullopt when the diagram has the wrong cell count.
[[nodiscard]] std::optional<Position> position_from_diagram(
    std::string_view diagram, game::Player to_move);

}  // namespace gpu_mcts::reversi
