#include "reversi/openings.hpp"

#include <array>
#include <sstream>

#include "reversi/notation.hpp"

namespace gpu_mcts::reversi {

namespace {

// Well-known opening families (Othello literature names). Every line is
// validated by the unit tests against the move generator.
constexpr std::array<Opening, 7> kBook = {{
    {"diagonal", "f5 d6 c3"},
    {"perpendicular", "f5 d6 c4"},
    {"parallel", "f5 f6"},
    {"tiger", "f5 d6 c4 d3"},
    {"cow", "f5 d6 c5"},
    {"rose-prefix", "f5 d6 c5 f4 e3"},
    {"heath-prefix", "f5 f6 e6 f4"},
}};

}  // namespace

std::span<const Opening> opening_book() { return kBook; }

std::optional<Opening> find_opening(std::string_view name) {
  for (const Opening& o : kBook) {
    if (o.name == name) return o;
  }
  return std::nullopt;
}

std::optional<std::vector<Move>> parse_line(std::string_view line) {
  std::vector<Move> moves;
  std::istringstream stream{std::string(line)};
  std::string token;
  Position pos = initial_position();
  std::array<Move, 34> legal{};
  while (stream >> token) {
    const auto move = move_from_string(token);
    if (!move.has_value()) return std::nullopt;
    const int n = legal_moves(pos, std::span(legal));
    bool is_legal = false;
    for (int i = 0; i < n; ++i) is_legal = is_legal || legal[i] == *move;
    if (!is_legal) return std::nullopt;
    moves.push_back(*move);
    pos = apply_move(pos, *move);
  }
  return moves;
}

std::optional<Position> position_after(const Opening& opening,
                                       int max_plies) {
  const auto moves = parse_line(opening.line);
  if (!moves.has_value()) return std::nullopt;
  Position pos = initial_position();
  int played = 0;
  for (const Move m : *moves) {
    if (max_plies >= 0 && played >= max_plies) break;
    pos = apply_move(pos, m);
    ++played;
  }
  return pos;
}

}  // namespace gpu_mcts::reversi
