// Reversi position: the two disc sets plus side to move.
//
// Representation decision: discs are stored per *color* (black/white), not
// per side-to-move, so positions hash and print stably across pass moves.
// The struct is 17 bytes and trivially copyable — it is the State that SIMT
// lanes carry.
#pragma once

#include <cstdint>
#include <span>

#include "game/game_traits.hpp"
#include "reversi/bitboard.hpp"

namespace gpu_mcts::reversi {

using game::Outcome;
using game::Player;

/// A move is a square index 0..63, or kPassMove when the mover has no
/// placement but the game is not over.
using Move = std::uint8_t;
inline constexpr Move kPassMove = 64;

struct Position {
  Bitboard discs[2] = {0, 0};  // [0]=black (first player), [1]=white
  std::uint8_t to_move = 0;

  [[nodiscard]] constexpr Bitboard own() const noexcept {
    return discs[to_move];
  }
  [[nodiscard]] constexpr Bitboard opp() const noexcept {
    return discs[1 - to_move];
  }
  [[nodiscard]] constexpr Bitboard occupied() const noexcept {
    return discs[0] | discs[1];
  }
  [[nodiscard]] constexpr Bitboard empty() const noexcept {
    return ~occupied();
  }

  friend constexpr bool operator==(const Position&, const Position&) = default;
};

/// The standard initial position (d4/e5 white, d5/e4 black... note: we use
/// the convention black on d5+e4, white on d4+e5; black moves first).
[[nodiscard]] constexpr Position initial_position() noexcept {
  Position p;
  p.discs[0] = square_bit(square_at(3, 4)) | square_bit(square_at(4, 3));
  p.discs[1] = square_bit(square_at(3, 3)) | square_bit(square_at(4, 4));
  p.to_move = 0;
  return p;
}

/// Placement squares for the side to move (excludes pass).
[[nodiscard]] constexpr Bitboard placement_mask(const Position& p) noexcept {
  return legal_moves_mask(p.own(), p.opp());
}

/// True when neither side can place a disc.
[[nodiscard]] constexpr bool is_terminal(const Position& p) noexcept {
  if (legal_moves_mask(p.own(), p.opp()) != 0) return false;
  return legal_moves_mask(p.opp(), p.own()) == 0;
}

/// Fills `out` with all legal moves (pass when the mover is blocked but the
/// opponent is not). Returns the count; 0 only for terminal positions.
/// `out` must have room for at least 33 moves (max placements is 33? safe
/// upper bound kMaxMoves below).
[[nodiscard]] constexpr int legal_moves(const Position& p,
                                        std::span<Move> out) noexcept {
  Bitboard mask = placement_mask(p);
  if (mask == 0) {
    if (legal_moves_mask(p.opp(), p.own()) == 0) return 0;  // terminal
    out[0] = kPassMove;
    return 1;
  }
  int n = 0;
  while (mask != 0) out[n++] = static_cast<Move>(pop_lsb(mask));
  return n;
}

/// Applies a move (placement or pass). Illegal placements are a programming
/// error; in release builds the behaviour is as-if the move flipped whatever
/// rays it brackets (possibly none).
[[nodiscard]] constexpr Position apply_move(const Position& p,
                                            Move m) noexcept {
  Position next = p;
  if (m != kPassMove) {
    const Bitboard flips = flips_for_move(p.own(), p.opp(), m);
    next.discs[p.to_move] |= flips | square_bit(m);
    next.discs[1 - p.to_move] &= ~flips;
  }
  next.to_move = static_cast<std::uint8_t>(1 - p.to_move);
  return next;
}

/// Disc difference from `player`'s perspective. Per standard Reversi scoring,
/// empty squares at game end go to the winner of the disc count — the paper's
/// "point difference" traces (Fig. 7/8) use raw disc difference, so we expose
/// both.
[[nodiscard]] constexpr int disc_difference(const Position& p,
                                            Player player) noexcept {
  const std::size_t me = game::index_of(player);
  return popcount(p.discs[me]) - popcount(p.discs[1 - me]);
}

/// Final score with the empty-squares-to-winner rule applied. Only meaningful
/// for terminal positions.
[[nodiscard]] constexpr int final_score(const Position& p,
                                        Player player) noexcept {
  const int diff = disc_difference(p, player);
  const int empties = popcount(p.empty());
  if (diff > 0) return diff + empties;
  if (diff < 0) return diff - empties;
  return 0;
}

[[nodiscard]] constexpr Outcome outcome_for(const Position& p,
                                            Player player) noexcept {
  const int diff = disc_difference(p, player);
  if (diff > 0) return Outcome::kWin;
  if (diff < 0) return Outcome::kLoss;
  return Outcome::kDraw;
}

}  // namespace gpu_mcts::reversi
