// SoA batch move-generation kernels (DESIGN.md §17), compiled here rather
// than inline so they can carry target_clones: GCC emits a baseline x86-64
// clone plus AVX2 and AVX-512 clones and binds the best one at load time via
// ifunc. The lane loops are pure u64 bitwise dataflow over parallel arrays —
// exactly the shape the vectorizer wants (8 lanes per zmm, 4 per ymm) — but
// the project's portable build flags would otherwise pin them to SSE2.
//
// A second, subtler reason to compile these out-of-line: as header inlines
// their codegen depended on the including TU's inlining budget, which made
// scalar-vs-batched wall-clock comparisons unstable across TUs. One
// definition here gives every caller the same instruction stream.
#include "reversi/bitboard.hpp"

namespace gpu_mcts::reversi {

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define GPU_MCTS_BATCH_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define GPU_MCTS_BATCH_CLONES
#endif

GPU_MCTS_BATCH_CLONES
void legal_moves_mask_batch(const Bitboard* own, const Bitboard* opp,
                            Bitboard* moves, int n) noexcept {
  for (int i = 0; i < n; ++i) moves[i] = 0;
  accumulate_moves_batch<Direction::kNorth>(own, opp, moves, n);
  accumulate_moves_batch<Direction::kSouth>(own, opp, moves, n);
  accumulate_moves_batch<Direction::kEast>(own, opp, moves, n);
  accumulate_moves_batch<Direction::kWest>(own, opp, moves, n);
  accumulate_moves_batch<Direction::kNorthEast>(own, opp, moves, n);
  accumulate_moves_batch<Direction::kNorthWest>(own, opp, moves, n);
  accumulate_moves_batch<Direction::kSouthEast>(own, opp, moves, n);
  accumulate_moves_batch<Direction::kSouthWest>(own, opp, moves, n);
}

GPU_MCTS_BATCH_CLONES
void flips_for_moves_batch(const Bitboard* own, const Bitboard* opp,
                           const Bitboard* placed, Bitboard* flips,
                           int n) noexcept {
  for (int i = 0; i < n; ++i) flips[i] = 0;
  accumulate_flips_batch<Direction::kNorth>(own, opp, placed, flips, n);
  accumulate_flips_batch<Direction::kSouth>(own, opp, placed, flips, n);
  accumulate_flips_batch<Direction::kEast>(own, opp, placed, flips, n);
  accumulate_flips_batch<Direction::kWest>(own, opp, placed, flips, n);
  accumulate_flips_batch<Direction::kNorthEast>(own, opp, placed, flips, n);
  accumulate_flips_batch<Direction::kNorthWest>(own, opp, placed, flips, n);
  accumulate_flips_batch<Direction::kSouthEast>(own, opp, placed, flips, n);
  accumulate_flips_batch<Direction::kSouthWest>(own, opp, placed, flips, n);
}

}  // namespace gpu_mcts::reversi
