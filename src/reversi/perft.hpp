// perft (move-path enumeration) for the Reversi engine: counts leaf nodes of
// the game tree to a fixed depth. Known reference values exist for Reversi
// perft from the initial position, making this the strongest available
// correctness oracle for the move generator.
#pragma once

#include <cstdint>
#include <span>

#include "reversi/position.hpp"

namespace gpu_mcts::reversi {

/// Number of leaf positions at exactly `depth` plies below `p`. Passes count
/// as plies (the convention used by published Reversi perft tables). Terminal
/// positions above `depth` count once.
[[nodiscard]] std::uint64_t perft(const Position& p, int depth);

/// Like perft but returns the number of distinct (move, submove, ...) paths
/// split by first move; handy for localizing movegen bugs.
struct PerftDivide {
  Move move;
  std::uint64_t nodes;
};

/// Fills `out` (size >= kMaxMoves legal moves) and returns count.
[[nodiscard]] int perft_divide(const Position& p, int depth,
                               std::span<PerftDivide> out);

}  // namespace gpu_mcts::reversi
