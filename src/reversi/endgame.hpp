// Exact endgame solver: negamax with alpha-beta over the final empties.
//
// MCTS plays the endgame statistically; real Reversi engines switch to
// exact search once few squares remain. The solver doubles as a strength
// oracle for tests (any searcher's endgame move can be scored against the
// proven-optimal value) and powers the `analyze` mode of play_reversi.
#pragma once

#include <cstdint>

#include "reversi/position.hpp"

namespace gpu_mcts::reversi {

struct SolveResult {
  /// Exact final score (empties-to-winner rule) from the perspective of the
  /// player to move in the solved position.
  int score = 0;
  /// Optimal move (kPassMove when the side to move must pass); undefined
  /// for terminal positions.
  Move best_move = kPassMove;
  /// Search-tree nodes visited.
  std::uint64_t nodes = 0;
};

/// Solves a position exactly. `max_empties` guards against accidental
/// exponential blowups: positions with more empties throw.
[[nodiscard]] SolveResult solve_endgame(const Position& position,
                                        int max_empties = 14);

}  // namespace gpu_mcts::reversi
