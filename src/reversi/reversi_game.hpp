// Adapter exposing the Reversi engine through the Game concept consumed by
// the MCTS core and the SIMT playout kernel.
#pragma once

#include <cstdint>
#include <span>

#include "game/game_traits.hpp"
#include "reversi/position.hpp"
#include "reversi/zobrist.hpp"

namespace gpu_mcts::reversi {

class ReversiGame {
 public:
  using State = Position;
  using Move = reversi::Move;

  /// 33 placements is impossible; 32 empties reachable mid-game is a safe
  /// bound, and +1 leaves room for the pass move representation.
  static constexpr int kMaxMoves = 33;
  /// 60 placements + worst-case interleaved passes.
  static constexpr int kMaxGameLength = 80;

  [[nodiscard]] static State initial_state() noexcept {
    return initial_position();
  }

  [[nodiscard]] static int legal_moves(const State& s,
                                       std::span<Move> out) noexcept {
    return reversi::legal_moves(s, out);
  }

  [[nodiscard]] static State apply(const State& s, Move m) noexcept {
    return apply_move(s, m);
  }

  [[nodiscard]] static bool is_terminal(const State& s) noexcept {
    return reversi::is_terminal(s);
  }

  [[nodiscard]] static game::Player player_to_move(const State& s) noexcept {
    return static_cast<game::Player>(s.to_move);
  }

  [[nodiscard]] static game::Outcome outcome_for(const State& s,
                                                 game::Player p) noexcept {
    return reversi::outcome_for(s, p);
  }

  [[nodiscard]] static int score_difference(const State& s,
                                            game::Player p) noexcept {
    return disc_difference(s, p);
  }

  [[nodiscard]] static std::uint64_t hash(const State& s) noexcept {
    return Zobrist::hash(s);
  }

  /// Fast playout step (optional Game extension, detected by the playout
  /// code): advances `s` by one uniformly random legal move without
  /// materializing a move list — the k-th set bit of the placement mask is
  /// selected directly. Returns false (state unchanged) when terminal.
  template <typename Rng>
  [[nodiscard]] static bool playout_step(State& s, Rng& rng) noexcept {
    Bitboard mask = placement_mask(s);
    if (mask == 0) {
      if (legal_moves_mask(s.opp(), s.own()) == 0) return false;  // terminal
      s = apply_move(s, kPassMove);
      return true;
    }
    const int n = popcount(mask);
    if (n > 1) {
      // Drop k lowest bits, then take the new lowest.
      for (auto k = rng.next_below(static_cast<std::uint32_t>(n)); k > 0; --k) {
        mask &= mask - 1;
      }
    }
    s = apply_move(s, static_cast<Move>(lsb_index(mask)));
    return true;
  }

  /// Batched playout traits (game::BatchedGameWith, DESIGN.md §17): a
  /// 32-lane structure-of-arrays mirror of playout_step. Lanes hold the
  /// position in the side-to-move frame (own/opp), which makes apply a
  /// pure swap-and-mask: own' = opp & ~flips, opp' = own | flips | placed.
  /// A pass is the same dataflow with zero flips and placement, so pass
  /// lanes ride the batched apply instead of diverging.
  struct Batched {
    static constexpr int kWidth = 32;

    struct Lanes {
      Bitboard own[kWidth];
      Bitboard opp[kWidth];
      std::uint8_t to_move[kWidth];
    };

    static void load(Lanes& l, int lane, const Position& s) noexcept {
      l.own[lane] = s.own();
      l.opp[lane] = s.opp();
      l.to_move[lane] = s.to_move;
    }

    [[nodiscard]] static Position extract(const Lanes& l, int lane) noexcept {
      Position s;
      s.discs[l.to_move[lane]] = l.own[lane];
      s.discs[1 - l.to_move[lane]] = l.opp[lane];
      s.to_move = l.to_move[lane];
      return s;
    }

    /// One batched ply. Equivalence with playout_step, lane by lane:
    ///  * mobility and flips come from the same Kogge-Stone floods (the
    ///    batch helpers are the scalar ones unrolled over lanes);
    ///  * a lane with >= 2 placements draws exactly one next_below(n) from
    ///    its own rng and selects the same drop-k-lowest-bits move; other
    ///    lanes draw nothing (the scalar contract);
    ///  * terminal lanes (no move either side) leave the mask with their
    ///    state untouched; pass lanes apply with flips = placed = 0.
    template <typename Rng>
    [[nodiscard]] static std::uint32_t step(Lanes& l, std::uint32_t mask,
                                            Rng* rngs) noexcept {
      Bitboard moves[kWidth];
      legal_moves_mask_batch(l.own, l.opp, moves, kWidth);

      Bitboard placed[kWidth] = {};
      std::uint32_t advanced = mask;
      for (std::uint32_t m = mask; m != 0; m &= m - 1) {
        const int lane = std::countr_zero(m);
        Bitboard pick = moves[lane];
        if (pick == 0) {
          // Rare slow path: pass-or-terminal needs the opponent's mobility.
          if (legal_moves_mask(l.opp[lane], l.own[lane]) == 0) {
            advanced &= ~(1u << lane);  // terminal; lane retires in place
          }
          continue;  // pass: zero placement, apply still swaps sides
        }
        const int n = popcount(pick);
        if (n > 1) {
          for (auto k = rngs[lane].next_below(static_cast<std::uint32_t>(n));
               k > 0; --k) {
            pick &= pick - 1;
          }
        }
        placed[lane] = pick & (~pick + 1);
      }

      Bitboard flips[kWidth];
      flips_for_moves_batch(l.own, l.opp, placed, flips, kWidth);

      // Branch-free masked apply: advancing lanes swap perspective with
      // their flips committed; retired and inactive lanes are preserved
      // bit for bit by the select mask.
      for (int i = 0; i < kWidth; ++i) {
        const Bitboard sel = static_cast<Bitboard>(0) -
                             static_cast<Bitboard>((advanced >> i) & 1u);
        const Bitboard next_own = l.opp[i] & ~flips[i];
        const Bitboard next_opp = l.own[i] | flips[i] | placed[i];
        l.own[i] = (next_own & sel) | (l.own[i] & ~sel);
        l.opp[i] = (next_opp & sel) | (l.opp[i] & ~sel);
        l.to_move[i] ^= static_cast<std::uint8_t>((advanced >> i) & 1u);
      }
      return advanced;
    }
  };
};

static_assert(game::Game<ReversiGame>);

}  // namespace gpu_mcts::reversi
