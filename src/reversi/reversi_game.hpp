// Adapter exposing the Reversi engine through the Game concept consumed by
// the MCTS core and the SIMT playout kernel.
#pragma once

#include <cstdint>
#include <span>

#include "game/game_traits.hpp"
#include "reversi/position.hpp"
#include "reversi/zobrist.hpp"

namespace gpu_mcts::reversi {

class ReversiGame {
 public:
  using State = Position;
  using Move = reversi::Move;

  /// 33 placements is impossible; 32 empties reachable mid-game is a safe
  /// bound, and +1 leaves room for the pass move representation.
  static constexpr int kMaxMoves = 33;
  /// 60 placements + worst-case interleaved passes.
  static constexpr int kMaxGameLength = 80;

  [[nodiscard]] static State initial_state() noexcept {
    return initial_position();
  }

  [[nodiscard]] static int legal_moves(const State& s,
                                       std::span<Move> out) noexcept {
    return reversi::legal_moves(s, out);
  }

  [[nodiscard]] static State apply(const State& s, Move m) noexcept {
    return apply_move(s, m);
  }

  [[nodiscard]] static bool is_terminal(const State& s) noexcept {
    return reversi::is_terminal(s);
  }

  [[nodiscard]] static game::Player player_to_move(const State& s) noexcept {
    return static_cast<game::Player>(s.to_move);
  }

  [[nodiscard]] static game::Outcome outcome_for(const State& s,
                                                 game::Player p) noexcept {
    return reversi::outcome_for(s, p);
  }

  [[nodiscard]] static int score_difference(const State& s,
                                            game::Player p) noexcept {
    return disc_difference(s, p);
  }

  [[nodiscard]] static std::uint64_t hash(const State& s) noexcept {
    return Zobrist::hash(s);
  }

  /// Fast playout step (optional Game extension, detected by the playout
  /// code): advances `s` by one uniformly random legal move without
  /// materializing a move list — the k-th set bit of the placement mask is
  /// selected directly. Returns false (state unchanged) when terminal.
  template <typename Rng>
  [[nodiscard]] static bool playout_step(State& s, Rng& rng) noexcept {
    Bitboard mask = placement_mask(s);
    if (mask == 0) {
      if (legal_moves_mask(s.opp(), s.own()) == 0) return false;  // terminal
      s = apply_move(s, kPassMove);
      return true;
    }
    const int n = popcount(mask);
    if (n > 1) {
      // Drop k lowest bits, then take the new lowest.
      for (auto k = rng.next_below(static_cast<std::uint32_t>(n)); k > 0; --k) {
        mask &= mask - 1;
      }
    }
    s = apply_move(s, static_cast<Move>(lsb_index(mask)));
    return true;
  }
};

static_assert(game::Game<ReversiGame>);

}  // namespace gpu_mcts::reversi
