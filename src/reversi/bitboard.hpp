// 64-bit bitboard primitives for Reversi.
//
// Square numbering: bit i = file + 8*rank, a1 = 0, h1 = 7, a8 = 56, h8 = 63.
// Direction shifts mask off the wrapping file so east/west rays never leak
// across board edges. Move generation uses the classic Kogge-Stone flood:
// propagate from own discs through opponent discs, then step once more into
// empty squares.
//
// Everything here is constexpr and branch-light: these functions are the
// inner loop of both the scalar playout and the SIMT playout kernel.
#pragma once

#include <bit>
#include <cstdint>

namespace gpu_mcts::reversi {

using Bitboard = std::uint64_t;

inline constexpr Bitboard kFileA = 0x0101010101010101ULL;
inline constexpr Bitboard kFileH = 0x8080808080808080ULL;
inline constexpr Bitboard kAll = ~0ULL;

inline constexpr int kBoardSize = 8;
inline constexpr int kSquares = 64;

/// The eight ray directions.
enum class Direction : std::uint8_t {
  kNorth, kSouth, kEast, kWest, kNorthEast, kNorthWest, kSouthEast, kSouthWest
};

inline constexpr Direction kAllDirections[] = {
    Direction::kNorth,     Direction::kSouth,     Direction::kEast,
    Direction::kWest,      Direction::kNorthEast, Direction::kNorthWest,
    Direction::kSouthEast, Direction::kSouthWest,
};

/// One step in a direction, with edge masking.
[[nodiscard]] constexpr Bitboard shift(Bitboard b, Direction d) noexcept {
  switch (d) {
    case Direction::kNorth: return b << 8;
    case Direction::kSouth: return b >> 8;
    case Direction::kEast: return (b & ~kFileH) << 1;
    case Direction::kWest: return (b & ~kFileA) >> 1;
    case Direction::kNorthEast: return (b & ~kFileH) << 9;
    case Direction::kNorthWest: return (b & ~kFileA) << 7;
    case Direction::kSouthEast: return (b & ~kFileH) >> 7;
    case Direction::kSouthWest: return (b & ~kFileA) >> 9;
  }
  return 0;
}

[[nodiscard]] constexpr int popcount(Bitboard b) noexcept {
  return std::popcount(b);
}

/// Index of the lowest set bit; b must be non-zero.
[[nodiscard]] constexpr int lsb_index(Bitboard b) noexcept {
  return std::countr_zero(b);
}

/// Clears and returns the lowest set bit's index.
constexpr int pop_lsb(Bitboard& b) noexcept {
  const int idx = lsb_index(b);
  b &= b - 1;
  return idx;
}

[[nodiscard]] constexpr Bitboard square_bit(int square) noexcept {
  return 1ULL << square;
}

[[nodiscard]] constexpr int file_of(int square) noexcept { return square & 7; }
[[nodiscard]] constexpr int rank_of(int square) noexcept { return square >> 3; }
[[nodiscard]] constexpr int square_at(int file, int rank) noexcept {
  return rank * 8 + file;
}

/// All squares where `own` can legally place a disc given `opp` occupancy.
[[nodiscard]] constexpr Bitboard legal_moves_mask(Bitboard own,
                                                  Bitboard opp) noexcept {
  const Bitboard empty = ~(own | opp);
  Bitboard moves = 0;
  for (const Direction d : kAllDirections) {
    // Flood own discs through up to six opponent discs, then one more step
    // lands on the capturing square (which must be empty).
    Bitboard flood = shift(own, d) & opp;
    flood |= shift(flood, d) & opp;
    flood |= shift(flood, d) & opp;
    flood |= shift(flood, d) & opp;
    flood |= shift(flood, d) & opp;
    flood |= shift(flood, d) & opp;
    moves |= shift(flood, d) & empty;
  }
  return moves;
}

/// Discs flipped by playing on `square` (a single-bit board). Returns 0 when
/// the move captures nothing (i.e. it is illegal).
///
/// Implementation: the dual of legal_moves_mask — flood the placed disc
/// through opponent discs in each direction, then commit the ray only if one
/// more step lands on an own disc. Branch-free per direction; this is the
/// hot instruction stream of every playout ply.
[[nodiscard]] constexpr Bitboard flips_for_move(Bitboard own, Bitboard opp,
                                                int square) noexcept {
  const Bitboard placed = square_bit(square);
  Bitboard flips = 0;
  for (const Direction d : kAllDirections) {
    Bitboard flood = shift(placed, d) & opp;
    flood |= shift(flood, d) & opp;
    flood |= shift(flood, d) & opp;
    flood |= shift(flood, d) & opp;
    flood |= shift(flood, d) & opp;
    flood |= shift(flood, d) & opp;
    // Bracketed iff the next step past the flood hits an own disc.
    if ((shift(flood, d) & own) != 0) flips |= flood;
  }
  return flips;
}

// ---------------------------------------------------------------------------
// Structure-of-arrays batch primitives (DESIGN.md §17).
//
// The same Kogge-Stone floods as above, but over parallel arrays of
// positions: direction-outer, lane-inner loops whose bodies are pure bitwise
// dataflow, so the compiler autovectorizes the lane loop (8 u64 lanes per
// AVX-512 register, 4 per AVX2). The scalar bracket branch in
// flips_for_move becomes a `0 - (cond)` select mask — branch-free, so one
// lane's divergence never serializes the batch.
// ---------------------------------------------------------------------------

/// Accumulates `own`-to-move placement squares along direction D for n
/// lanes: moves[i] |= the D-ray component of legal_moves_mask(own[i],
/// opp[i]).
template <Direction D>
constexpr void accumulate_moves_batch(const Bitboard* own, const Bitboard* opp,
                                      Bitboard* moves, int n) noexcept {
  for (int i = 0; i < n; ++i) {
    const Bitboard o = opp[i];
    Bitboard flood = shift(own[i], D) & o;
    flood |= shift(flood, D) & o;
    flood |= shift(flood, D) & o;
    flood |= shift(flood, D) & o;
    flood |= shift(flood, D) & o;
    flood |= shift(flood, D) & o;
    moves[i] |= shift(flood, D) & ~(own[i] | o);
  }
}

/// Batched legal_moves_mask: moves[i] = legal_moves_mask(own[i], opp[i]).
///
/// Compiled out-of-line (bitboard_batch.cpp) with target_clones: the build
/// stays baseline-x86-64 portable, but the loader binds an AVX-512/AVX2
/// clone of the lane loops at startup when the host has the silicon — the
/// whole point of the SoA layout is 4-8 u64 lanes per vector register, and
/// a generic-tuning inline build would leave that on the table. Keeping the
/// bodies out of the header also pins their codegen: these are the hottest
/// loops in the warp-batched backend, and inlining them into large TUs was
/// observed to swing their quality with the including TU's inlining budget.
void legal_moves_mask_batch(const Bitboard* own, const Bitboard* opp,
                            Bitboard* moves, int n) noexcept;

/// Accumulates direction-D flips for n lanes, where placed[i] is a
/// single-bit board (or 0 for lanes with no placement — those accumulate 0
/// because an empty flood never brackets).
template <Direction D>
constexpr void accumulate_flips_batch(const Bitboard* own, const Bitboard* opp,
                                      const Bitboard* placed, Bitboard* flips,
                                      int n) noexcept {
  for (int i = 0; i < n; ++i) {
    const Bitboard o = opp[i];
    Bitboard flood = shift(placed[i], D) & o;
    flood |= shift(flood, D) & o;
    flood |= shift(flood, D) & o;
    flood |= shift(flood, D) & o;
    flood |= shift(flood, D) & o;
    flood |= shift(flood, D) & o;
    // Branch-free bracket test: all-ones iff one more step hits an own disc.
    const Bitboard bracketed =
        static_cast<Bitboard>(0) -
        static_cast<Bitboard>((shift(flood, D) & own[i]) != 0);
    flips[i] |= flood & bracketed;
  }
}

/// Batched flips_for_move: flips[i] = flips for placing placed[i] (a
/// single-bit board; 0 yields 0 flips) against own[i]/opp[i]. Out-of-line
/// with target_clones, same rationale as legal_moves_mask_batch.
void flips_for_moves_batch(const Bitboard* own, const Bitboard* opp,
                           const Bitboard* placed, Bitboard* flips,
                           int n) noexcept;

/// 8-fold board symmetry transforms, used by property tests to check that
/// move generation commutes with symmetry.
[[nodiscard]] constexpr Bitboard mirror_horizontal(Bitboard b) noexcept {
  constexpr Bitboard k1 = 0x5555555555555555ULL;
  constexpr Bitboard k2 = 0x3333333333333333ULL;
  constexpr Bitboard k4 = 0x0f0f0f0f0f0f0f0fULL;
  b = ((b >> 1) & k1) | ((b & k1) << 1);
  b = ((b >> 2) & k2) | ((b & k2) << 2);
  b = ((b >> 4) & k4) | ((b & k4) << 4);
  return b;
}

[[nodiscard]] constexpr Bitboard byteswap_board(Bitboard b) noexcept {
  b = ((b >> 8) & 0x00ff00ff00ff00ffULL) | ((b & 0x00ff00ff00ff00ffULL) << 8);
  b = ((b >> 16) & 0x0000ffff0000ffffULL) | ((b & 0x0000ffff0000ffffULL) << 16);
  b = (b >> 32) | (b << 32);
  return b;
}

[[nodiscard]] constexpr Bitboard mirror_vertical(Bitboard b) noexcept {
  return byteswap_board(b);
}

[[nodiscard]] constexpr Bitboard transpose_board(Bitboard b) noexcept {
  Bitboard t = (b ^ (b >> 7)) & 0x00aa00aa00aa00aaULL;
  b ^= t ^ (t << 7);
  t = (b ^ (b >> 14)) & 0x0000cccc0000ccccULL;
  b ^= t ^ (t << 14);
  t = (b ^ (b >> 28)) & 0x00000000f0f0f0f0ULL;
  b ^= t ^ (t << 28);
  return b;
}

}  // namespace gpu_mcts::reversi
