// Sequential MCTS with between-move tree reuse: after our move and the
// opponent's reply, the matching grandchild subtree (with all its
// statistics) becomes the next search's starting tree instead of a bare
// root. A standard engine feature the paper's fresh-tree-per-move scheme
// leaves on the table; ablation-tested against the plain searcher.
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "game/game_traits.hpp"
#include "mcts/config.hpp"
#include "mcts/playout.hpp"
#include "mcts/searcher.hpp"
#include "mcts/stats.hpp"
#include "mcts/tree.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_props.hpp"
#include "util/check.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::mcts {

template <game::Game G>
class ReuseSequentialSearcher final : public Searcher<G> {
 public:
  explicit ReuseSequentialSearcher(
      SearchConfig config = {},
      simt::HostProperties host = simt::xeon_x5670(),
      simt::CostModel cost = simt::default_cost_model())
      : config_(config), host_(host), cost_(cost), seed_(config.seed),
        rng_(config.seed) {}

  using Searcher<G>::choose_move;

  [[nodiscard]] typename G::Move choose_move(
      const typename G::State& state,
      const SearchBudget& budget) override {
    util::expects(!G::is_terminal(state), "choose_move on terminal state");
    util::WallTimer wall;
    const bool wall_limited = budget.wall_ms.has_value();
    StopReason stop_reason = StopReason::kBudget;
    // Round-boundary supervision, token before deadline — the same
    // attribution order as every other scheme (see tree_parallel.hpp).
    const auto should_stop = [&]() -> bool {
      if (budget.cancel != nullptr && budget.cancel->cancelled()) {
        stop_reason = StopReason::kCancelled;
        return true;
      }
      if (wall_limited && wall.elapsed_seconds() * 1000.0 >= *budget.wall_ms) {
        stop_reason = StopReason::kWallDeadline;
        return true;
      }
      return false;
    };
    util::VirtualClock clock(host_.clock_hz);
    const std::uint64_t deadline = clock.to_cycles(budget.virtual_seconds);

    reused_nodes_ = rebase_tree(state);

    stats_ = {};
    do {
      const Selection<G> sel = tree_->select();
      double value;
      std::uint32_t plies = 0;
      if (sel.terminal) {
        value = game::value_of(
            G::outcome_for(sel.state, game::Player::kFirst));
      } else {
        const PlayoutResult playout = random_playout<G>(sel.state, rng_);
        value = playout.value_first;
        plies = playout.plies;
      }
      tree_->backpropagate(sel.node, value, 1, value * value);
      clock.advance(static_cast<std::uint64_t>(
          cost_.host_tree_op_cycles +
          cost_.host_cycles_per_ply * static_cast<double>(plies)));
      stats_.simulations += 1;
      stats_.cpu_iterations += 1;
      stats_.rounds += 1;
    } while (!should_stop() && clock.cycles() < deadline);

    stats_.stop_reason = stop_reason;
    stats_.tree_nodes = tree_->node_count();
    stats_.max_depth = tree_->max_depth();
    stats_.virtual_seconds = clock.seconds();

    last_move_ = tree_->best_move();
    state_after_our_move_ = G::apply(state, *last_move_);
    return *last_move_;
  }

  [[nodiscard]] const SearchStats& last_stats() const noexcept override {
    return stats_;
  }

  [[nodiscard]] std::string name() const override {
    return "sequential CPU (tree reuse)";
  }

  void reseed(std::uint64_t seed) override {
    seed_ = seed;
    rng_ = util::XorShift128Plus(seed);
    tree_.reset();
    last_move_.reset();
  }

  /// Nodes carried over into the last search (1 = fresh tree).
  [[nodiscard]] std::size_t reused_nodes() const noexcept {
    return reused_nodes_;
  }

 private:
  /// Advances the stored tree through (our last move, opponent's reply) when
  /// the new state is reachable that way; otherwise starts fresh.
  std::size_t rebase_tree(const typename G::State& state) {
    if (tree_ && last_move_) {
      // Identify the opponent's reply by matching resulting states.
      std::array<typename G::Move, static_cast<std::size_t>(G::kMaxMoves)>
          moves{};
      const int n = G::legal_moves(*state_after_our_move_, std::span(moves));
      for (int i = 0; i < n; ++i) {
        if (states_equal(G::apply(*state_after_our_move_, moves[i]), state)) {
          (void)tree_->advance_root(*last_move_, *state_after_our_move_);
          return tree_->advance_root(moves[i], state);
        }
      }
    }
    tree_ = std::make_unique<Tree<G>>(state, config_,
                                      util::derive_seed(seed_, ++rebases_));
    return 1;
  }

  [[nodiscard]] static bool states_equal(const typename G::State& a,
                                         const typename G::State& b) {
    if constexpr (requires { a == b; }) {
      return a == b;
    } else {
      // Trivially copyable value types without operator==: bytewise
      // comparison (our game states copy padding along with data).
      return std::memcmp(&a, &b, sizeof(a)) == 0;
    }
  }

  SearchConfig config_;
  simt::HostProperties host_;
  simt::CostModel cost_;
  std::uint64_t seed_;
  std::uint64_t rebases_ = 0;
  util::XorShift128Plus rng_;
  std::unique_ptr<Tree<G>> tree_;
  std::optional<typename G::Move> last_move_;
  std::optional<typename G::State> state_after_our_move_;
  std::size_t reused_nodes_ = 0;
  SearchStats stats_;
};

}  // namespace gpu_mcts::mcts
