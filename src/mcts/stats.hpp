// Statistics a searcher reports after choosing a move. The bench harness
// aggregates these into the paper's figure series (simulations/second,
// tree depth, ...).
#pragma once

#include <cstdint>

#include "mcts/budget.hpp"
#include "util/fault.hpp"

namespace gpu_mcts::mcts {

struct SearchStats {
  /// Total playouts contributing to the decision (across all trees/lanes).
  std::uint64_t simulations = 0;
  /// Iterations (sequential) or kernel rounds (GPU schemes).
  std::uint64_t rounds = 0;
  /// Rounds whose kernel launched and whose results were backpropagated —
  /// the denominator of `divergence_waste`. Excludes CPU-fallback rounds,
  /// fault-failed rounds, and terminal-leaf shortcut rounds, all of which
  /// ran no kernel (gpu_rounds == rounds for fault-free GPU schemes; 0 for
  /// CPU schemes).
  std::uint64_t gpu_rounds = 0;
  /// Simulations run as plain CPU iterations (sequential schemes, hybrid
  /// overlap, terminal-leaf shortcuts, fault-recovery fallback batches).
  /// cpu_iterations + gpu_simulations == simulations for every scheme.
  std::uint64_t cpu_iterations = 0;
  /// Simulations executed by virtual-GPU kernel launches.
  std::uint64_t gpu_simulations = 0;
  /// Nodes allocated across all trees.
  std::uint64_t tree_nodes = 0;
  /// Deepest selection path reached in any tree (root = depth 0).
  std::uint32_t max_depth = 0;
  /// Virtual seconds consumed choosing the move.
  double virtual_seconds = 0.0;
  /// Fraction of SIMD lane-slots wasted (GPU schemes only; 0 for CPU).
  double divergence_waste = 0.0;
  /// Why the search returned (DESIGN.md §12). kBudget — the default — is
  /// the unsupervised outcome: the virtual budget ran out.
  StopReason stop_reason = StopReason::kBudget;
  /// Kernel launches the hang watchdog timed out (each also appears in
  /// `faults` as FaultKind::kKernelHang — the counts match one to one).
  std::uint64_t watchdog_timeouts = 0;
  /// Injected faults and recovery actions observed during this search
  /// (empty unless a util::FaultInjector was enabled — degradation is
  /// observable, never silent).
  util::FaultLog faults;

  [[nodiscard]] double simulations_per_second() const noexcept {
    return virtual_seconds > 0.0
               ? static_cast<double>(simulations) / virtual_seconds
               : 0.0;
  }

  /// Accumulates per-move stats into a per-game or per-experiment total.
  void accumulate(const SearchStats& other) {
    // Simulation-weighted mean: a move searched with 14k playouts should
    // dominate one searched with 50, and accumulating a zero-simulation
    // entry must not move the value.
    const std::uint64_t total = simulations + other.simulations;
    if (total > 0) {
      divergence_waste =
          (divergence_waste * static_cast<double>(simulations) +
           other.divergence_waste * static_cast<double>(other.simulations)) /
          static_cast<double>(total);
    }
    simulations += other.simulations;
    rounds += other.rounds;
    gpu_rounds += other.gpu_rounds;
    cpu_iterations += other.cpu_iterations;
    gpu_simulations += other.gpu_simulations;
    tree_nodes += other.tree_nodes;
    if (other.max_depth > max_depth) max_depth = other.max_depth;
    virtual_seconds += other.virtual_seconds;
    watchdog_timeouts += other.watchdog_timeouts;
    // stop_reason is per-move, not additive; an accumulated total keeps its
    // own default.
    faults.accumulate(other.faults);
  }
};

}  // namespace gpu_mcts::mcts
