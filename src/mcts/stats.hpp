// Statistics a searcher reports after choosing a move. The bench harness
// aggregates these into the paper's figure series (simulations/second,
// tree depth, ...).
#pragma once

#include <cstdint>

#include "util/fault.hpp"

namespace gpu_mcts::mcts {

struct SearchStats {
  /// Total playouts contributing to the decision (across all trees/lanes).
  std::uint64_t simulations = 0;
  /// Iterations (sequential) or kernel rounds (GPU schemes).
  std::uint64_t rounds = 0;
  /// Nodes allocated across all trees.
  std::uint64_t tree_nodes = 0;
  /// Deepest selection path reached in any tree (root = depth 0).
  std::uint32_t max_depth = 0;
  /// Virtual seconds consumed choosing the move.
  double virtual_seconds = 0.0;
  /// Fraction of SIMD lane-slots wasted (GPU schemes only; 0 for CPU).
  double divergence_waste = 0.0;
  /// Injected faults and recovery actions observed during this search
  /// (empty unless a util::FaultInjector was enabled — degradation is
  /// observable, never silent).
  util::FaultLog faults;

  [[nodiscard]] double simulations_per_second() const noexcept {
    return virtual_seconds > 0.0
               ? static_cast<double>(simulations) / virtual_seconds
               : 0.0;
  }

  /// Accumulates per-move stats into a per-game or per-experiment total.
  void accumulate(const SearchStats& other) {
    simulations += other.simulations;
    rounds += other.rounds;
    tree_nodes += other.tree_nodes;
    if (other.max_depth > max_depth) max_depth = other.max_depth;
    virtual_seconds += other.virtual_seconds;
    // Weighted by simulations would be more precise; max is good enough for
    // reporting and keeps the field meaningful for mixed schemes.
    if (other.divergence_waste > divergence_waste)
      divergence_waste = other.divergence_waste;
    faults.accumulate(other.faults);
  }
};

}  // namespace gpu_mcts::mcts
