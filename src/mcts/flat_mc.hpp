// Flat Monte Carlo search: no tree at all — distribute the budget's playouts
// uniformly over the root moves and play the best sample mean. The classic
// pre-MCTS baseline; included so the benches can show what the *tree* part
// of MCTS buys (the paper motivates MCTS over plain random simulation in
// §I-II).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "game/game_traits.hpp"
#include "mcts/config.hpp"
#include "mcts/playout.hpp"
#include "mcts/searcher.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_props.hpp"
#include "util/check.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::mcts {

template <game::Game G>
class FlatMonteCarloSearcher final : public Searcher<G> {
 public:
  explicit FlatMonteCarloSearcher(
      SearchConfig config = {},
      simt::HostProperties host = simt::xeon_x5670(),
      simt::CostModel cost = simt::default_cost_model())
      : config_(config), host_(host), cost_(cost), seed_(config.seed) {}

  using Searcher<G>::choose_move;

  [[nodiscard]] typename G::Move choose_move(
      const typename G::State& state,
      const SearchBudget& budget) override {
    util::expects(!G::is_terminal(state), "choose_move on terminal state");
    util::WallTimer wall;
    const bool wall_limited = budget.wall_ms.has_value();
    StopReason stop_reason = StopReason::kBudget;
    // Round-boundary supervision, token before deadline — the same
    // attribution order as every other scheme (see tree_parallel.hpp).
    const auto should_stop = [&]() -> bool {
      if (budget.cancel != nullptr && budget.cancel->cancelled()) {
        stop_reason = StopReason::kCancelled;
        return true;
      }
      if (wall_limited && wall.elapsed_seconds() * 1000.0 >= *budget.wall_ms) {
        stop_reason = StopReason::kWallDeadline;
        return true;
      }
      return false;
    };
    util::VirtualClock clock(host_.clock_hz);
    const std::uint64_t deadline = clock.to_cycles(budget.virtual_seconds);
    util::XorShift128Plus rng(util::derive_seed(seed_, move_counter_++));

    std::array<typename G::Move, static_cast<std::size_t>(G::kMaxMoves)>
        moves{};
    const int n = G::legal_moves(state, std::span(moves));
    util::check(n > 0, "non-terminal state has moves");

    std::array<double, static_cast<std::size_t>(G::kMaxMoves)> value_sum{};
    std::array<std::uint64_t, static_cast<std::size_t>(G::kMaxMoves)>
        visits{};

    const game::Player mover = G::player_to_move(state);
    stats_ = {};
    int cursor = 0;
    do {
      const int i = cursor;
      cursor = (cursor + 1) % n;  // round-robin: uniform allocation
      const typename G::State child = G::apply(state, moves[i]);
      double value_first;
      std::uint32_t plies = 0;
      if (G::is_terminal(child)) {
        value_first =
            game::value_of(G::outcome_for(child, game::Player::kFirst));
      } else {
        const PlayoutResult r = random_playout<G>(child, rng);
        value_first = r.value_first;
        plies = r.plies;
      }
      value_sum[i] += mover == game::Player::kFirst ? value_first
                                                    : 1.0 - value_first;
      visits[i] += 1;
      clock.advance(static_cast<std::uint64_t>(
          cost_.host_cycles_per_ply * static_cast<double>(plies) +
          cost_.host_tree_op_cycles / 4.0));  // no tree: cheaper bookkeeping
      stats_.simulations += 1;
      stats_.rounds += 1;
      stats_.cpu_iterations += 1;
    } while (!should_stop() && clock.cycles() < deadline);
    stats_.stop_reason = stop_reason;

    int best = 0;
    for (int i = 1; i < n; ++i) {
      const double rate_i =
          visits[i] > 0 ? value_sum[i] / static_cast<double>(visits[i]) : 0.0;
      const double rate_b =
          visits[best] > 0
              ? value_sum[best] / static_cast<double>(visits[best])
              : 0.0;
      if (rate_i > rate_b) best = i;
    }

    stats_.tree_nodes = static_cast<std::uint64_t>(n) + 1;
    stats_.max_depth = 1;
    stats_.virtual_seconds = clock.seconds();
    return moves[best];
  }

  [[nodiscard]] const SearchStats& last_stats() const noexcept override {
    return stats_;
  }

  [[nodiscard]] std::string name() const override {
    return "flat Monte Carlo (1 core)";
  }

  void reseed(std::uint64_t seed) override {
    seed_ = seed;
    move_counter_ = 0;
  }

 private:
  SearchConfig config_;
  simt::HostProperties host_;
  simt::CostModel cost_;
  std::uint64_t seed_;
  std::uint64_t move_counter_ = 0;
  SearchStats stats_;
};

}  // namespace gpu_mcts::mcts
