// SearchBudget: every bound a supervised search runs under, and StopReason:
// which of them ended it (DESIGN.md §12).
//
// The virtual-time budget is the paper's experiment knob and stays the
// primary limit; the wall-clock deadline and the cancellation token are the
// serving-system bounds layered on top. A search stopped early by any of
// them still returns a legal best-so-far move (the anytime contract).
#pragma once

#include <cstdint>
#include <optional>

#include "util/cancel.hpp"

namespace gpu_mcts::mcts {

/// Why a search returned when it did. Recorded in SearchStats::stop_reason.
enum class StopReason : std::uint8_t {
  /// The virtual-time budget was spent (the normal, unsupervised outcome).
  kBudget = 0,
  /// The wall-clock deadline expired before the virtual budget did.
  kWallDeadline,
  /// The CancelToken was cancelled.
  kCancelled,
  /// The tree(s) stopped growing (arena cap or exhausted position) and the
  /// caller opted into stopping rather than re-sampling a frozen tree.
  kTreeSaturated,
};
inline constexpr std::size_t kStopReasons = 4;

/// The bounds of one choose_move call. Default-constructed, it reproduces
/// the unsupervised seed behaviour exactly: virtual budget only, no wall
/// deadline, no cancellation — searchers are bit-identical either way.
struct SearchBudget {
  /// Virtual seconds of search (the classic budget_seconds argument).
  double virtual_seconds = 0.0;
  /// Optional wall-clock deadline in milliseconds, measured from the start
  /// of choose_move on a steady clock. Checked at round and cohort
  /// boundaries, and it clamps the hang watchdog, so the search returns
  /// within a small multiple of this bound even under injected hangs.
  std::optional<double> wall_ms;
  /// Optional cooperative cancellation; not owned, may be cancelled from any
  /// thread. nullptr = not cancellable.
  util::CancelToken* cancel = nullptr;
  /// Stop with StopReason::kTreeSaturated once a full round allocates no new
  /// tree node. Off by default: re-sampling a capped tree still sharpens its
  /// visit counts, and the seed schemes always run the budget out.
  bool stop_on_tree_saturation = false;

  /// The classic unsupervised budget: virtual seconds only. What the
  /// `choose_move(state, double)` overloads forward through.
  [[nodiscard]] static SearchBudget from_seconds(double virtual_seconds) {
    SearchBudget budget;
    budget.virtual_seconds = virtual_seconds;
    return budget;
  }
};

}  // namespace gpu_mcts::mcts
