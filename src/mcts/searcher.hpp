// The scheme-agnostic searcher interface: every parallelization scheme in the
// paper (sequential, leaf, root, block, hybrid, distributed) implements this,
// and the experiment harness composes them into players.
#pragma once

#include <string>

#include "game/game_traits.hpp"
#include "mcts/budget.hpp"
#include "mcts/stats.hpp"

namespace gpu_mcts::obs {
class Tracer;
}

namespace gpu_mcts::mcts {

class TranspositionTable;

template <game::Game G>
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Chooses a move for the side to move in `state` under the given
  /// SearchBudget (DESIGN.md §12) — virtual time plus an optional wall-clock
  /// deadline, cancellation token, and saturation stop. This is the single
  /// virtual entry point every scheme implements. Always returns a legal
  /// best-so-far move (the anytime contract), with SearchStats::stop_reason
  /// saying which bound ended the search. A budget built by
  /// SearchBudget::from_seconds is bit-identical to the classic
  /// unsupervised virtual-time-only search. `state` must not be terminal.
  [[nodiscard]] virtual typename G::Move choose_move(
      const typename G::State& state, const SearchBudget& budget) = 0;

  /// Convenience: the classic unsupervised call, spending up to
  /// `budget_seconds` of *virtual* time (see DESIGN.md §5.1). Non-virtual —
  /// it forwards to the SearchBudget overload, so derived schemes implement
  /// exactly one entry point. Derived classes that want this overload
  /// callable on their concrete type pull it in with
  /// `using mcts::Searcher<G>::choose_move;`.
  [[nodiscard]] typename G::Move choose_move(const typename G::State& state,
                                             double budget_seconds) {
    return choose_move(state, SearchBudget::from_seconds(budget_seconds));
  }

  /// Statistics of the most recent choose_move call.
  [[nodiscard]] virtual const SearchStats& last_stats() const noexcept = 0;

  /// Human-readable scheme description, e.g. "block-parallel GPU (112x128)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Re-seeds the searcher's stochastic components (between games).
  virtual void reseed(std::uint64_t seed) = 0;

  /// Attaches an observability tracer (obs/trace.hpp); nullptr detaches.
  /// The default is a no-op so schemes opt in; with no tracer attached a
  /// searcher's behaviour is bit-identical to one built without tracing.
  virtual void set_tracer(obs::Tracer* tracer) noexcept { (void)tracer; }

  /// The shared transposition table this searcher feeds, or nullptr when
  /// searching without one (the default). Overridden by the factory's
  /// table-owning decorator; exposed so tests and the serving layer can
  /// inspect hit-rates without knowing the concrete scheme.
  [[nodiscard]] virtual const TranspositionTable* transposition()
      const noexcept {
    return nullptr;
  }
};

}  // namespace gpu_mcts::mcts
