// The MCTS game tree: arena-allocated nodes, UCB1 selection, one-node
// expansion per iteration, and (wins, visits) backpropagation — the four
// steps of the paper's Figure 1.
//
// Conventions:
//  * Playout values are always expressed for Player::kFirst (black); a node
//    stores wins from the perspective of the player who *made* its incoming
//    move, so backpropagation flips the value per level implicitly via the
//    stored mover.
//  * Children are allocated en bloc (shuffled) the first time a node is
//    selected through; "expansion adds one node per iteration" is realized by
//    visiting one previously-unvisited child per selection pass.
//  * States are not stored in nodes: selection replays moves from the root,
//    which for bitboard Reversi is cheaper than the memory traffic of cached
//    states and keeps nodes at 32 bytes.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "game/game_traits.hpp"
#include "mcts/config.hpp"
#include "mcts/transposition.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::mcts {

using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kNoNode = std::numeric_limits<NodeIndex>::max();

template <game::Game G>
struct Node {
  NodeIndex parent = kNoNode;
  NodeIndex first_child = kNoNode;
  std::uint16_t num_children = 0;
  /// Children [0, next_unexpanded) have been visited at least once.
  std::uint16_t next_unexpanded = 0;
  typename G::Move move{};
  /// Player who played `move` to reach this node.
  game::Player mover = game::Player::kSecond;
  /// True once children were allocated (or the node is terminal). A node
  /// that hit the arena's max_nodes cap stays *un*expanded so selection
  /// re-attempts it once advance_root frees space.
  bool expanded = false;
  std::uint32_t visits = 0;
  /// Win credit for `mover` (draws count 0.5).
  double wins = 0.0;
  /// Sum of squared per-playout values from `mover`'s perspective —
  /// the variance input of UCB1-Tuned selection.
  double win_squares = 0.0;
};

/// Result of one selection pass.
template <game::Game G>
struct Selection {
  NodeIndex node = kNoNode;
  typename G::State state{};
  /// Depth of `node` below the root.
  std::uint32_t depth = 0;
  bool terminal = false;
};

template <game::Game G>
class Tree {
 public:
  using State = typename G::State;
  using Move = typename G::Move;

  Tree(const State& root_state, const SearchConfig& config,
       std::uint64_t seed)
      : config_(config), rng_(seed) {
    reset(root_state);
  }

  /// Reinitializes the tree on a new root position.
  void reset(const State& root_state) {
    nodes_.clear();
    nodes_.reserve(1024);
    root_state_ = root_state;
    max_depth_ = 0;
    outstanding_virtual_loss_ = 0;
    Node<G> root;
    root.mover = game::opponent_of(G::player_to_move(root_state));
    nodes_.push_back(root);
    hashes_.clear();
    if (config_.transposition != nullptr) {
      hashes_.push_back(G::hash(root_state));
    }
  }

  /// One selection + (implicit) expansion pass: descends by UCB, visiting an
  /// unvisited child when one exists, and returns the playout start node.
  [[nodiscard]] Selection<G> select() {
    Selection<G> sel;
    sel.node = 0;
    sel.state = root_state_;
    for (;;) {
      if (G::is_terminal(sel.state)) {
        sel.terminal = true;
        break;
      }
      Node<G>& node = nodes_[sel.node];
      if (!node.expanded) {
        expand(sel.node, sel.state);
      }
      Node<G>& fresh = nodes_[sel.node];  // expand may reallocate
      if (fresh.num_children == 0) {
        // Node pool exhausted: treat as playout leaf.
        break;
      }
      NodeIndex next;
      if (fresh.next_unexpanded < fresh.num_children) {
        next = fresh.first_child + fresh.next_unexpanded;
        ++nodes_[sel.node].next_unexpanded;
        sel.state = G::apply(sel.state, nodes_[next].move);
        sel.node = next;
        ++sel.depth;
        // Newly expanded node: stop and play out from here (flagging
        // terminal states so callers can score them exactly).
        sel.terminal = G::is_terminal(sel.state);
        break;
      }
      next = best_ucb_child(sel.node);
      sel.state = G::apply(sel.state, nodes_[next].move);
      sel.node = next;
      ++sel.depth;
    }
    if (sel.depth > max_depth_) max_depth_ = sel.depth;
    return sel;
  }

  /// Adds `sims` visits along the path to the root. `value_first_sum` is the
  /// summed playout value for Player::kFirst over those sims;
  /// `value_sq_first_sum` the summed squares (for UCB1-Tuned variance
  /// estimates). The default (= value sum) is exact for win/loss outcomes
  /// and a slight overestimate for draws, which only makes UCB1-Tuned
  /// marginally more exploratory — callers with exact squares pass them.
  void backpropagate(NodeIndex leaf, double value_first_sum,
                     std::uint32_t sims = 1,
                     double value_sq_first_sum = -1.0) {
    util::expects(leaf < nodes_.size(), "backpropagate into live node");
    util::expects(value_first_sum >= 0.0 &&
                      value_first_sum <= static_cast<double>(sims),
                  "value sum within [0, sims]");
    if (value_sq_first_sum < 0.0) value_sq_first_sum = value_first_sum;
    const double n_d = static_cast<double>(sims);
    for (NodeIndex n = leaf; n != kNoNode; n = nodes_[n].parent) {
      Node<G>& node = nodes_[n];
      node.visits += sims;
      if (node.mover == game::Player::kFirst) {
        node.wins += value_first_sum;
        node.win_squares += value_sq_first_sum;
      } else {
        node.wins += n_d - value_first_sum;
        // sum (1-x)^2 = sims - 2*sum x + sum x^2
        node.win_squares += n_d - 2.0 * value_first_sum + value_sq_first_sum;
      }
    }
    if (TranspositionTable* tt = config_.transposition; tt != nullptr) {
      // Feed *deltas only* into the shared table — priors seeded at
      // expansion are already in there, so re-storing node totals would
      // double-count. Playout values are multiples of 0.5, so 2x the sum
      // is an exact integer half-point count.
      const auto half_first =
          static_cast<std::uint64_t>(std::llround(value_first_sum * 2.0));
      std::uint8_t hint = TranspositionTable::kNoHint;
      for (NodeIndex n = leaf; n != kNoNode; n = nodes_[n].parent) {
        const Node<G>& node = nodes_[n];
        // Table entries score the *side to move* at the keyed position —
        // the opponent of node.mover.
        const std::uint64_t half_stm = node.mover == game::Player::kFirst
                                           ? 2ull * sims - half_first
                                           : half_first;
        tt->store(hashes_[n], sims, half_stm, hint);
        // The parent's hint is the move just walked: the move *into* n.
        hint = static_cast<std::uint8_t>(node.move);
      }
    }
  }

  /// Re-roots the tree at the child reached by `move`, preserving that
  /// subtree's statistics (the classic between-moves tree reuse). Returns
  /// the number of nodes retained; when the move's child was never expanded
  /// the tree simply resets on `new_root_state` and 1 is returned.
  std::size_t advance_root(Move move, const State& new_root_state) {
    const Node<G>& root = nodes_[0];
    NodeIndex child = kNoNode;
    for (NodeIndex c = root.first_child;
         c < root.first_child + root.num_children; ++c) {
      if (nodes_[c].move == move) {
        child = c;
        break;
      }
    }
    if (child == kNoNode || nodes_[child].visits == 0) {
      reset(new_root_state);
      return 1;
    }

    // Copy the subtree rooted at `child` into a fresh arena (BFS keeps
    // children contiguous, which the node layout requires).
    std::vector<Node<G>> fresh;
    fresh.reserve(nodes_.size() / 2);
    const bool keep_hashes = config_.transposition != nullptr;
    std::vector<std::uint64_t> fresh_hashes;
    if (keep_hashes) {
      fresh_hashes.reserve(nodes_.size() / 2);
      // Recomputed rather than copied: advance_root's contract is only that
      // new_root_state is the position at `child`, and the hash is cheap.
      fresh_hashes.push_back(G::hash(new_root_state));
    }
    std::vector<std::pair<NodeIndex, NodeIndex>> queue;  // (old, new parent)
    Node<G> new_root = nodes_[child];
    new_root.parent = kNoNode;
    const game::Player new_mover =
        game::opponent_of(G::player_to_move(new_root_state));
    if (new_mover != new_root.mover) {
      // The recomputed perspective flipped relative to the stored node's —
      // in Reversi this happens when a pass sits between the stored child
      // and `new_root_state` (the same side is to move again). The stored
      // wins/win_squares are sums of per-playout values x from the old
      // mover's perspective; re-express them for the new mover (values
      // become 1 - x): sum(1-x) = n - sum(x) and
      // sum((1-x)^2) = n - 2*sum(x) + sum(x^2).
      const double n_d = static_cast<double>(new_root.visits);
      const double old_wins = new_root.wins;
      new_root.wins = n_d - old_wins;
      new_root.win_squares = n_d - 2.0 * old_wins + new_root.win_squares;
    }
    new_root.mover = new_mover;
    fresh.push_back(new_root);
    queue.emplace_back(child, 0);

    for (std::size_t q = 0; q < queue.size(); ++q) {
      const auto [old_index, new_index] = queue[q];
      const Node<G>& old_node = nodes_[old_index];
      if (old_node.num_children == 0) continue;
      const auto first = static_cast<NodeIndex>(fresh.size());
      for (NodeIndex c = old_node.first_child;
           c < old_node.first_child + old_node.num_children; ++c) {
        Node<G> copy = nodes_[c];
        copy.parent = new_index;
        fresh.push_back(copy);
        if (keep_hashes) fresh_hashes.push_back(hashes_[c]);
      }
      fresh[new_index].first_child = first;
      for (std::uint16_t k = 0; k < old_node.num_children; ++k) {
        queue.emplace_back(old_node.first_child + k,
                           static_cast<NodeIndex>(first + k));
      }
    }

    nodes_ = std::move(fresh);
    hashes_ = std::move(fresh_hashes);
    root_state_ = new_root_state;
    max_depth_ = 0;
    return nodes_.size();
  }

  /// Temporarily charges `amount` visits (with no wins) along the path to
  /// the root — the *virtual loss* of tree parallelism: in-flight selections
  /// look like losses so concurrent workers spread across the tree.
  void apply_virtual_loss(NodeIndex leaf, std::uint32_t amount) {
    util::expects(leaf < nodes_.size(), "virtual loss on live node");
    outstanding_virtual_loss_ += amount;
    for (NodeIndex n = leaf; n != kNoNode; n = nodes_[n].parent) {
      nodes_[n].visits += amount;
    }
  }

  /// Reverts apply_virtual_loss (must be called with the same leaf/amount).
  void remove_virtual_loss(NodeIndex leaf, std::uint32_t amount) {
    util::expects(leaf < nodes_.size(), "virtual loss on live node");
    util::expects(outstanding_virtual_loss_ >= amount,
                  "virtual loss balance");
    outstanding_virtual_loss_ -= amount;
    for (NodeIndex n = leaf; n != kNoNode; n = nodes_[n].parent) {
      util::expects(nodes_[n].visits >= amount, "virtual loss balance");
      nodes_[n].visits -= amount;
    }
  }

  /// Total virtual-loss visits currently applied and not yet removed. The
  /// read APIs below require this to be zero — a leaked loss silently skews
  /// the visit ranking — so sanitize builds assert it at those points.
  [[nodiscard]] std::uint64_t outstanding_virtual_loss() const noexcept {
    return outstanding_virtual_loss_;
  }

  /// The move with the most visits at the root (ties broken by win rate) —
  /// the standard "robust child" final selection.
  [[nodiscard]] Move best_move() const {
#ifdef GPU_MCTS_SANITIZE_ENABLED
    util::check(outstanding_virtual_loss_ == 0,
                "no outstanding virtual losses at best_move");
#endif
    const Node<G>& root = nodes_[0];
    util::check(root.num_children > 0, "best_move needs an expanded root");
    NodeIndex best = root.first_child;
    for (NodeIndex c = root.first_child;
         c < root.first_child + root.num_children; ++c) {
      const Node<G>& cand = nodes_[c];
      const Node<G>& incumbent = nodes_[best];
      if (cand.visits > incumbent.visits ||
          (cand.visits == incumbent.visits &&
           win_rate(cand) > win_rate(incumbent))) {
        best = c;
      }
    }
    return nodes_[best].move;
  }

  /// Per-root-child (move, visits, wins) rows — what root parallelism sums
  /// across trees ("the root node has to be updated by summing up results
  /// from all other trees", paper §II.4).
  struct RootChildStat {
    Move move{};
    std::uint32_t visits = 0;
    double wins = 0.0;
  };

  [[nodiscard]] std::vector<RootChildStat> root_child_stats() const {
#ifdef GPU_MCTS_SANITIZE_ENABLED
    util::check(outstanding_virtual_loss_ == 0,
                "no outstanding virtual losses at root_child_stats");
#endif
    std::vector<RootChildStat> out;
    const Node<G>& root = nodes_[0];
    out.reserve(root.num_children);
    for (NodeIndex c = root.first_child;
         c < root.first_child + root.num_children; ++c) {
      out.push_back({nodes_[c].move, nodes_[c].visits, nodes_[c].wins});
    }
    return out;
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::uint32_t max_depth() const noexcept { return max_depth_; }
  [[nodiscard]] std::uint32_t root_visits() const noexcept {
    return nodes_[0].visits;
  }
  [[nodiscard]] const State& root_state() const noexcept {
    return root_state_;
  }
  [[nodiscard]] const Node<G>& node(NodeIndex i) const {
    return nodes_.at(i);
  }

 private:
  static double win_rate(const Node<G>& n) noexcept {
    return n.visits > 0 ? n.wins / static_cast<double>(n.visits) : 0.0;
  }

  /// Generates legal moves (shuffled) and allocates all children.
  void expand(NodeIndex index, const State& state) {
    std::array<Move, static_cast<std::size_t>(G::kMaxMoves)> moves{};
    const int n = G::legal_moves(state, std::span(moves));
    if (n == 0) {
      // Terminal (select() normally catches this earlier): permanently a
      // leaf, so remember the verdict.
      nodes_[index].expanded = true;
      return;
    }
    if (nodes_.size() + static_cast<std::size_t>(n) > config_.max_nodes) {
      // Pool cap: a *capped* node is not expanded — it stays a playout leaf
      // for now but must be re-attempted later, because advance_root can
      // free most of the arena and the node would otherwise be frozen
      // childless forever. Leaving `expanded` false costs nothing while the
      // cap persists (the RNG is only consumed on success below, so the
      // re-attempts don't perturb any stream) and resumes growth the moment
      // capacity returns.
      return;
    }
    nodes_[index].expanded = true;
    // Shuffle so unvisited-child order is unbiased (Fisher-Yates).
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<int>(
          rng_.next_below(static_cast<std::uint32_t>(i + 1)));
      std::swap(moves[i], moves[j]);
    }
    TranspositionTable* tt = config_.transposition;
    if (tt != nullptr) {
      // Front-load the table's best-move hint so it is the first unvisited
      // child tried. Done *after* the shuffle — the RNG stream stays
      // identical with and without a table attached.
      if (const auto here = tt->probe(hashes_[index]);
          here && here->move_hint != TranspositionTable::kNoHint) {
        for (int i = 0; i < n; ++i) {
          if (static_cast<std::uint8_t>(moves[i]) == here->move_hint) {
            std::swap(moves[0], moves[i]);
            break;
          }
        }
      }
    }
    const auto first = static_cast<NodeIndex>(nodes_.size());
    const game::Player mover = G::player_to_move(state);
    for (int i = 0; i < n; ++i) {
      Node<G> child;
      child.parent = index;
      child.move = moves[i];
      child.mover = mover;
      if (tt != nullptr) {
        const State child_state = G::apply(state, moves[i]);
        const std::uint64_t h = G::hash(child_state);
        hashes_.push_back(h);
        if (const auto hit = tt->probe(h); hit && hit->visits > 0) {
          // Seed the child with a capped prior. Table wins score the side
          // to move at child_state (the opponent of `mover`), so the
          // node's mover-perspective wins are the complement. The scaled
          // half-point total is re-expressed in points (x0.5).
          const std::uint32_t sv = hit->visits < kTtSeedVisitCap
                                       ? hit->visits
                                       : kTtSeedVisitCap;
          const double stm_points = static_cast<double>(hit->wins_half) *
                                    (static_cast<double>(sv) /
                                     static_cast<double>(hit->visits)) /
                                    2.0;
          child.visits = sv;
          child.wins = static_cast<double>(sv) - stm_points;
          // Win/loss-shaped prior (values in {0,1}): squares = wins.
          child.win_squares = child.wins;
        }
      }
      nodes_.push_back(child);
    }
    nodes_[index].first_child = first;
    nodes_[index].num_children = static_cast<std::uint16_t>(n);
    nodes_[index].next_unexpanded = 0;
  }

  /// Selection-bound argmax over the children of `index`. Children are
  /// normally all visited by the time this runs, but a child can legitimately
  /// carry zero visits: in the hybrid scheme the GPU round's selections sit
  /// un-backpropagated while overlap iterations descend the same tree, and a
  /// fault-failed round loses its backpropagation entirely. Such children are
  /// preferred outright (first-play urgency — an unvisited arm has an
  /// infinite upper confidence bound); dividing by their zero visit count
  /// would produce NaN scores that silently degrade the argmax to "first
  /// child".
  [[nodiscard]] NodeIndex best_ucb_child(NodeIndex index) const {
    const Node<G>& node = nodes_[index];
    const double log_parent =
        std::log(static_cast<double>(std::max(1u, node.visits)));
    NodeIndex best = node.first_child;
    double best_score = -1.0;
    for (NodeIndex c = node.first_child;
         c < node.first_child + node.num_children; ++c) {
      const Node<G>& child = nodes_[c];
      if (child.visits == 0) return c;
      const double v = static_cast<double>(child.visits);
      const double mean = child.wins / v;
      double explore;
      if (config_.selection == SelectionPolicy::kUcb1Tuned) {
        // Auer et al.: cap the per-arm variance bound at 1/4 (Bernoulli max).
        const double variance =
            std::max(0.0, child.win_squares / v - mean * mean);
        const double bound =
            variance + std::sqrt(2.0 * log_parent / v);
        explore = std::sqrt(log_parent / v * std::min(0.25, bound));
      } else {
        explore = std::sqrt(log_parent / v);
      }
      const double score = mean + config_.ucb_c * explore;
#ifdef GPU_MCTS_SANITIZE_ENABLED
      util::check(!std::isnan(score), "UCB score must not be NaN");
#endif
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    return best;
  }

  /// Cap on transposition-seeded prior visits: enough to steer early
  /// selection, small enough that live search evidence overturns a wrong
  /// (or stale) prior within a few dozen iterations.
  static constexpr std::uint32_t kTtSeedVisitCap = 64;

  SearchConfig config_;
  util::XorShift128Plus rng_;
  std::vector<Node<G>> nodes_;
  /// Per-node position hashes, maintained (parallel to nodes_) only when
  /// config_.transposition is attached; empty otherwise.
  std::vector<std::uint64_t> hashes_;
  State root_state_{};
  std::uint32_t max_depth_ = 0;
  /// Applied-but-not-removed virtual-loss visits (see apply_virtual_loss).
  std::uint64_t outstanding_virtual_loss_ = 0;
};

}  // namespace gpu_mcts::mcts
