// ExperienceStore: a persistent position -> (move, visits, score) memory
// that survives across processes. DESIGN.md §16.
//
// The arena records every position visited during self-play together with
// the move actually chosen and the final outcome for the mover; save()
// serializes the aggregate to a small versioned file and load() restores
// it. preload_into() then converts the aggregate into TranspositionTable
// priors, so a fresh search starts with statistics distilled from earlier
// games instead of a cold table — the "experience" half of this PR's
// tentpole, measured by bench/tt_experience.
//
// Per-position aggregation is deliberately tiny: total visits, total score
// in half-points (win = 2, draw = 1, loss = 0, mover's perspective — the
// same convention as the transposition table), and a single retained move
// chosen by the Misra-Gries k=1 heavy-hitter rule (counter++ on match,
// counter-- on mismatch, replace at zero). That retains the majority move
// when one exists using two bytes instead of a histogram.
//
// File format "GMX1" (all little-endian, independent of host endianness):
//   offset 0: magic "GMX1" (4 bytes)
//   offset 4: u32 version (currently 1)
//   offset 8: u64 entry count N
//   offset 16: N x 24-byte entries:
//       u64 key | u32 visits | u32 score_half | u8 move | u8 move_weight
//       | u16 reserved (0) | u32 reserved (0)
//   tail: u64 FNV-1a checksum of every preceding byte.
// load() returns false (store unchanged) on missing file, short read, bad
// magic/version, or checksum mismatch — corruption is never half-applied.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "game/game_traits.hpp"
#include "mcts/transposition.hpp"

namespace gpu_mcts::mcts {

class ExperienceStore {
 public:
  struct Record {
    std::uint32_t visits = 0;
    /// Cumulative outcome for the side to move, half-points per visit.
    std::uint32_t score_half = 0;
    /// Misra-Gries k=1 retained move and its counter.
    std::uint8_t move = 0xff;
    std::uint8_t move_weight = 0;
  };

  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kEntryBytes = 24;

  /// Folds one observed decision into the store: at the position hashed
  /// `key`, the side to move played `move` and eventually scored `outcome`
  /// (from its own perspective).
  void record(std::uint64_t key, std::uint8_t move,
              game::Outcome outcome) {
    Record& r = records_[key];
    if (r.visits < 0xffffffffu - 2) {
      r.visits += 1;
      r.score_half += half_points(outcome);
    }
    if (r.move == move) {
      if (r.move_weight < 0xff) ++r.move_weight;
    } else if (r.move_weight == 0) {
      r.move = move;
      r.move_weight = 1;
    } else {
      --r.move_weight;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::unordered_map<std::uint64_t, Record>& records()
      const noexcept {
    return records_;
  }

  /// Merges another store into this one (used when several arenas feed one
  /// file). Misra-Gries merge keeps the heavier retained move.
  void merge(const ExperienceStore& other) {
    for (const auto& [key, theirs] : other.records_) {
      Record& mine = records_[key];
      mine.visits += theirs.visits;
      mine.score_half += theirs.score_half;
      if (mine.move == theirs.move) {
        const unsigned sum = mine.move_weight + theirs.move_weight;
        mine.move_weight = sum < 0xff ? static_cast<std::uint8_t>(sum) : 0xff;
      } else if (theirs.move_weight > mine.move_weight) {
        mine.move = theirs.move;
        mine.move_weight =
            static_cast<std::uint8_t>(theirs.move_weight - mine.move_weight);
      } else {
        mine.move_weight =
            static_cast<std::uint8_t>(mine.move_weight - theirs.move_weight);
      }
    }
  }

  /// Writes the store to `path`. Returns false on I/O failure.
  [[nodiscard]] bool save(const std::string& path) const {
    std::vector<std::uint8_t> buf;
    buf.reserve(16 + records_.size() * kEntryBytes + 8);
    buf.push_back('G');
    buf.push_back('M');
    buf.push_back('X');
    buf.push_back('1');
    put_u32(buf, kVersion);
    put_u64(buf, records_.size());
    for (const auto& [key, r] : records_) {
      put_u64(buf, key);
      put_u32(buf, r.visits);
      put_u32(buf, r.score_half);
      buf.push_back(r.move);
      buf.push_back(r.move_weight);
      put_u16(buf, 0);
      put_u32(buf, 0);
    }
    put_u64(buf, fnv1a(buf.data(), buf.size()));
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
    const bool ok = std::fclose(f) == 0 && written == buf.size();
    return ok;
  }

  /// Replaces this store's contents with the file at `path`. On any
  /// failure — missing file, truncation, bad magic/version, checksum
  /// mismatch — returns false and leaves the store untouched.
  [[nodiscard]] bool load(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    std::vector<std::uint8_t> buf;
    std::uint8_t chunk[4096];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      buf.insert(buf.end(), chunk, chunk + n);
    }
    std::fclose(f);
    if (buf.size() < 16 + 8) return false;
    const std::size_t body = buf.size() - 8;
    if (fnv1a(buf.data(), body) != get_u64(buf.data() + body)) return false;
    if (buf[0] != 'G' || buf[1] != 'M' || buf[2] != 'X' || buf[3] != '1') {
      return false;
    }
    if (get_u32(buf.data() + 4) != kVersion) return false;
    const std::uint64_t count = get_u64(buf.data() + 8);
    if (body != 16 + count * kEntryBytes) return false;
    std::unordered_map<std::uint64_t, Record> loaded;
    loaded.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint8_t* p = buf.data() + 16 + i * kEntryBytes;
      Record r;
      r.visits = get_u32(p + 8);
      r.score_half = get_u32(p + 12);
      r.move = p[16];
      r.move_weight = p[17];
      loaded[get_u64(p)] = r;
    }
    records_ = std::move(loaded);
    return true;
  }

  /// Seeds a transposition table with this store's aggregate as priors.
  /// Each position becomes one entry with visits scaled to at most
  /// `max_seed_visits` (proportionally shrinking the score so the win rate
  /// is preserved) plus the retained move as hint. Returns entries seeded.
  std::size_t preload_into(TranspositionTable& table,
                           std::uint32_t max_seed_visits = 64) const {
    std::size_t seeded = 0;
    for (const auto& [key, r] : records_) {
      if (r.visits == 0) continue;
      std::uint32_t visits = r.visits;
      std::uint64_t score = r.score_half;
      if (visits > max_seed_visits) {
        score = (score * max_seed_visits + visits / 2) / visits;
        visits = max_seed_visits;
      }
      const std::uint8_t hint =
          r.move_weight > 0 ? r.move : TranspositionTable::kNoHint;
      table.store(key, visits, score, hint);
      ++seeded;
    }
    return seeded;
  }

 private:
  [[nodiscard]] static constexpr std::uint32_t half_points(
      game::Outcome o) noexcept {
    switch (o) {
      case game::Outcome::kWin: return 2;
      case game::Outcome::kDraw: return 1;
      case game::Outcome::kLoss: return 0;
    }
    return 0;
  }

  static void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
    b.push_back(static_cast<std::uint8_t>(v));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  static void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  static void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  [[nodiscard]] static std::uint32_t get_u32(const std::uint8_t* p) noexcept {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }
  [[nodiscard]] static std::uint64_t get_u64(const std::uint8_t* p) noexcept {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  [[nodiscard]] static std::uint64_t fnv1a(const std::uint8_t* p,
                                           std::size_t n) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  std::unordered_map<std::uint64_t, Record> records_;
};

}  // namespace gpu_mcts::mcts
