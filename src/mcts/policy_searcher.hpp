// Sequential MCTS with a pluggable playout policy — the knob
// ablation_playout turns. Identical to SequentialSearcher except that
// simulations run through mcts::policy_playout.
#pragma once

#include <string>

#include "game/game_traits.hpp"
#include "mcts/config.hpp"
#include "mcts/policy_playout.hpp"
#include "mcts/searcher.hpp"
#include "mcts/tree.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_props.hpp"
#include "util/check.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::mcts {

template <game::Game G, typename Policy>
class PolicySearcher final : public Searcher<G> {
 public:
  PolicySearcher(Policy policy, std::string policy_name,
                 SearchConfig config = {},
                 simt::HostProperties host = simt::xeon_x5670(),
                 simt::CostModel cost = simt::default_cost_model())
      : policy_(std::move(policy)),
        policy_name_(std::move(policy_name)),
        config_(config),
        host_(host),
        cost_(cost),
        seed_(config.seed) {}

  using Searcher<G>::choose_move;

  [[nodiscard]] typename G::Move choose_move(
      const typename G::State& state,
      const SearchBudget& budget) override {
    util::expects(!G::is_terminal(state), "choose_move on terminal state");
    util::WallTimer wall;
    const bool wall_limited = budget.wall_ms.has_value();
    StopReason stop_reason = StopReason::kBudget;
    // Round-boundary supervision, token before deadline — the same
    // attribution order as every other scheme (see tree_parallel.hpp).
    const auto should_stop = [&]() -> bool {
      if (budget.cancel != nullptr && budget.cancel->cancelled()) {
        stop_reason = StopReason::kCancelled;
        return true;
      }
      if (wall_limited && wall.elapsed_seconds() * 1000.0 >= *budget.wall_ms) {
        stop_reason = StopReason::kWallDeadline;
        return true;
      }
      return false;
    };
    util::VirtualClock clock(host_.clock_hz);
    const std::uint64_t deadline = clock.to_cycles(budget.virtual_seconds);

    Tree<G> tree(state, config_, util::derive_seed(seed_, move_counter_));
    util::XorShift128Plus rng(
        util::derive_seed(seed_, move_counter_ ^ 0xbadcafeULL));
    ++move_counter_;

    stats_ = {};
    do {
      const Selection<G> sel = tree.select();
      double value;
      std::uint32_t plies = 0;
      if (sel.terminal) {
        value = game::value_of(
            G::outcome_for(sel.state, game::Player::kFirst));
      } else {
        const PlayoutResult playout =
            policy_playout<G>(sel.state, rng, policy_);
        value = playout.value_first;
        plies = playout.plies;
      }
      tree.backpropagate(sel.node, value, 1);
      // Informed playouts cost a touch more per ply (policy evaluation).
      clock.advance(static_cast<std::uint64_t>(
          cost_.host_tree_op_cycles +
          1.15 * cost_.host_cycles_per_ply * static_cast<double>(plies)));
      stats_.simulations += 1;
      stats_.rounds += 1;
    } while (!should_stop() && clock.cycles() < deadline);

    stats_.stop_reason = stop_reason;
    stats_.tree_nodes = tree.node_count();
    stats_.max_depth = tree.max_depth();
    stats_.virtual_seconds = clock.seconds();
    return tree.best_move();
  }

  [[nodiscard]] const SearchStats& last_stats() const noexcept override {
    return stats_;
  }

  [[nodiscard]] std::string name() const override {
    return "sequential CPU (" + policy_name_ + " playouts)";
  }

  void reseed(std::uint64_t seed) override {
    seed_ = seed;
    move_counter_ = 0;
  }

 private:
  Policy policy_;
  std::string policy_name_;
  SearchConfig config_;
  simt::HostProperties host_;
  simt::CostModel cost_;
  std::uint64_t seed_;
  std::uint64_t move_counter_ = 0;
  SearchStats stats_;
};

}  // namespace gpu_mcts::mcts
