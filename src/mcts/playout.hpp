// Scalar (CPU) playout: uniformly random moves to the end of the game.
// The GPU equivalent lives in simt/playout_kernel.hpp; both must agree on
// semantics (tests cross-check their value distributions).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "game/game_traits.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::mcts {

/// Outcome of a single playout.
struct PlayoutResult {
  /// Value in {0, 0.5, 1} for Player::kFirst.
  double value_first = 0.5;
  /// Plies played (used to charge the virtual clock).
  std::uint32_t plies = 0;
};

template <game::Game G, typename Rng>
[[nodiscard]] PlayoutResult random_playout(typename G::State state, Rng& rng) {
  PlayoutResult result;
  if constexpr (requires(typename G::State& s) { G::playout_step(s, rng); }) {
    // Game provides the fast single-step path (no move-list materialization).
    while (G::playout_step(state, rng)) ++result.plies;
  } else {
    std::array<typename G::Move, static_cast<std::size_t>(G::kMaxMoves)>
        moves{};
    for (;;) {
      const int n = G::legal_moves(state, std::span(moves));
      if (n == 0) break;
      const auto pick = rng.next_below(static_cast<std::uint32_t>(n));
      state = G::apply(state, moves[pick]);
      ++result.plies;
    }
  }
  result.value_first =
      game::value_of(G::outcome_for(state, game::Player::kFirst));
  return result;
}

}  // namespace gpu_mcts::mcts
