// Tree inspection utilities: principal variation extraction and debug
// rendering. Used by the examples (showing what the searcher intends) and by
// tests that assert structural properties of finished searches.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "game/game_traits.hpp"
#include "mcts/tree.hpp"
#include "util/table.hpp"

namespace gpu_mcts::mcts {

/// The principal variation: from the root, repeatedly follow the
/// most-visited child (win rate as tie-break) until an unexpanded or
/// childless node. Returns the move sequence.
template <game::Game G>
[[nodiscard]] std::vector<typename G::Move> principal_variation(
    const Tree<G>& tree) {
  std::vector<typename G::Move> pv;
  NodeIndex current = 0;
  for (;;) {
    const Node<G>& node = tree.node(current);
    if (node.num_children == 0) break;
    NodeIndex best = node.first_child;
    for (NodeIndex c = node.first_child;
         c < node.first_child + node.num_children; ++c) {
      const Node<G>& cand = tree.node(c);
      const Node<G>& incumbent = tree.node(best);
      const double cand_rate =
          cand.visits > 0 ? cand.wins / static_cast<double>(cand.visits) : 0.0;
      const double inc_rate = incumbent.visits > 0
                                  ? incumbent.wins /
                                        static_cast<double>(incumbent.visits)
                                  : 0.0;
      if (cand.visits > incumbent.visits ||
          (cand.visits == incumbent.visits && cand_rate > inc_rate)) {
        best = c;
      }
    }
    if (tree.node(best).visits == 0) break;  // never actually explored
    pv.push_back(tree.node(best).move);
    current = best;
  }
  return pv;
}

/// Depth histogram: how many nodes live at each depth — the quantity behind
/// Figure 8's depth comparison (hybrid trees reach deeper).
template <game::Game G>
[[nodiscard]] std::vector<std::size_t> depth_histogram(const Tree<G>& tree) {
  const std::size_t n = tree.node_count();
  std::vector<std::uint32_t> depth(n, 0);
  std::vector<std::size_t> histogram(1, 1);  // root at depth 0
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = tree.node(static_cast<NodeIndex>(i)).parent;
    depth[i] = depth[parent] + 1;
    if (depth[i] >= histogram.size()) histogram.resize(depth[i] + 1, 0);
    ++histogram[depth[i]];
  }
  return histogram;
}

/// Renders the root's children as an aligned table (move/visits/win rate) —
/// what the examples print to explain a decision.
template <game::Game G, typename MoveFormatter>
[[nodiscard]] std::string root_summary(const Tree<G>& tree,
                                       MoveFormatter&& format_move) {
  util::Table table({"move", "visits", "win_rate"});
  for (const auto& stat : tree.root_child_stats()) {
    table.begin_row()
        .add(format_move(stat.move))
        .add(static_cast<unsigned long long>(stat.visits))
        .add(stat.visits > 0
                 ? stat.wins / static_cast<double>(stat.visits)
                 : 0.0,
             3);
  }
  std::ostringstream out;
  table.print(out);
  return out.str();
}

}  // namespace gpu_mcts::mcts
