// Playouts with a pluggable move-selection policy.
//
// The paper uses uniformly random simulations and stresses that MCTS "does
// not require any strategic or tactical knowledge"; nevertheless, lightly
// informed playouts are the standard first improvement, and the
// ablation_playout bench quantifies what domain knowledge buys on Reversi.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <span>

#include "game/game_traits.hpp"
#include "mcts/playout.hpp"

namespace gpu_mcts::mcts {

// clang-format off
/// A playout policy returns the index (< count) of the move to play.
template <typename P, typename G, typename Rng>
concept PlayoutPolicy = requires(const P& p, const typename G::State& s,
                                 std::span<const typename G::Move> moves,
                                 Rng& rng) {
  { p.template pick<G>(s, moves, rng) } -> std::convertible_to<int>;
};
// clang-format on

/// Uniform random baseline (what the paper's kernels do).
struct UniformPolicy {
  template <game::Game G, typename Rng>
  [[nodiscard]] int pick(const typename G::State&,
                         std::span<const typename G::Move> moves,
                         Rng& rng) const {
    return static_cast<int>(
        rng.next_below(static_cast<std::uint32_t>(moves.size())));
  }
};

/// Plays a full game with the given policy.
template <game::Game G, typename Rng, typename Policy>
[[nodiscard]] PlayoutResult policy_playout(typename G::State state, Rng& rng,
                                           const Policy& policy) {
  PlayoutResult result;
  std::array<typename G::Move, static_cast<std::size_t>(G::kMaxMoves)>
      moves{};
  for (;;) {
    const int n = G::legal_moves(state, std::span(moves));
    if (n == 0) break;
    const int pick = policy.template pick<G>(
        state, std::span<const typename G::Move>(moves.data(),
                                                 static_cast<std::size_t>(n)),
        rng);
    state = G::apply(state, moves[pick]);
    ++result.plies;
  }
  result.value_first =
      game::value_of(G::outcome_for(state, game::Player::kFirst));
  return result;
}

}  // namespace gpu_mcts::mcts
