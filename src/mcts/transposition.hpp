// TranspositionTable: a sharded, lock-free cache of position statistics
// keyed by Game::hash, shared by every tree of a search (and, in the
// serving layer, by every session of a service). DESIGN.md §16.
//
// The paper's trees are transposition-blind: identical positions reached in
// different trees, sessions, or games re-learn their statistics from
// scratch. This table closes that gap as a *cache*, never as the source of
// truth — authoritative statistics stay in the trees; the table seeds
// freshly expanded children with prior (visits, wins) and a best-move hint,
// and backpropagation feeds per-simulation deltas back. Losing an update
// under contention therefore costs a little information, never correctness.
//
// Lock-free entry protocol (the classic XOR-validation scheme, cf. Hyatt's
// "Lockless Transposition Table" as used by Crafty/Stockfish): an entry is
// two relaxed/acq-rel 64-bit atomics,
//     check = key ^ data          data = packed statistics
// A reader accepts an entry only when check ^ data reproduces the probed
// key. A torn pair — reader interleaving with a writer, or two writers
// racing — fails validation and reads as a miss; a racing double-update
// loses one delta. Both degrade hit-rate, neither corrupts a result.
//
// Packing (64 bits): visits:24 | wins_half:25 | move_hint:8 | epoch:4.
// Wins are fixed-point half-points (win = 2, draw = 1, loss = 0), the same
// convention as ConcurrentTree::Node::wins_half, so draw-heavy workloads
// accumulate exactly; 25 bits hold 2 x the 24-bit visit cap, so the
// half-point total round-trips exactly until visits saturate (then the
// entry freezes rather than truncating).
//
// Sharding: the top key bits select a shard (an independent open-addressed
// sub-table with its own slot mask), the low bits the slot; a small linear
// probe window handles collisions. Replacement prefers, in order: an empty
// slot, the shallowest stale-epoch entry, then the shallowest current
// entry — and the shallowest incumbent is only displaced by at least as
// many visits ("replace shallower"). bump_epoch() (called once per move
// decision by the owning searcher) ages every entry logically in O(1).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "util/check.hpp"

namespace gpu_mcts::mcts {

class TranspositionTable {
 public:
  /// Saturation caps of the packed fields. wins_half's cap is 2 x the
  /// visit cap, so any legal half-point total fits while visits do.
  static constexpr std::uint32_t kMaxVisits = (1u << 24) - 1;
  static constexpr std::uint64_t kMaxWinsHalf = (1ull << 25) - 1;
  /// Move hints are a single byte (every built-in game's Move fits); this
  /// value means "no hint".
  static constexpr std::uint8_t kNoHint = 0xff;
  /// Linear probe window per shard (clamped to the shard size).
  static constexpr std::size_t kProbeWindow = 4;
  static constexpr std::uint8_t kEpochMask = 0x0f;

  /// A validated read: statistics for the *side to move* at the keyed
  /// position (wins in half-points), plus the best-move hint byte.
  struct View {
    std::uint32_t visits = 0;
    std::uint64_t wins_half = 0;
    std::uint8_t move_hint = kNoHint;
    std::uint8_t epoch = 0;
  };

  struct Stats {
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
    std::uint64_t stores = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    /// Stores dropped because every window slot held a deeper, current
    /// entry (the replace-shallower policy refusing to thrash).
    std::uint64_t dropped = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      return probes > 0 ? static_cast<double>(hits) /
                              static_cast<double>(probes)
                        : 0.0;
    }
  };

  /// Entries occupying `mb` megabytes (16 bytes per entry).
  [[nodiscard]] static constexpr std::size_t entries_for_megabytes(
      int mb) noexcept {
    return static_cast<std::size_t>(mb) * (1024 * 1024 / sizeof(Entry));
  }

  /// A table of at least `min_entries` slots. Geometry: shard and per-shard
  /// slot counts are rounded to powers of two (tiny tables collapse to one
  /// shard so adversarial 2-entry tests exercise eviction directly).
  explicit TranspositionTable(std::size_t min_entries) {
    util::expects(min_entries >= 1, "transposition table holds an entry");
    shards_ = 1;
    while (shards_ < 16 && (min_entries / (shards_ * 2)) >= 64) shards_ *= 2;
    std::size_t per_shard = 1;
    while (per_shard * 2 * shards_ <= min_entries) per_shard *= 2;
    slots_per_shard_ = per_shard;
    window_ = kProbeWindow < per_shard ? kProbeWindow : per_shard;
    entries_ = std::make_unique<Entry[]>(shards_ * slots_per_shard_);
  }

  TranspositionTable(const TranspositionTable&) = delete;
  TranspositionTable& operator=(const TranspositionTable&) = delete;

  // -- packing -----------------------------------------------------------
  // Exposed so tests can pin the half-point round-trip at the entry
  // boundary without going through the atomics.

  [[nodiscard]] static constexpr std::uint64_t pack(
      std::uint32_t visits, std::uint64_t wins_half, std::uint8_t move_hint,
      std::uint8_t epoch) noexcept {
    return static_cast<std::uint64_t>(visits & kMaxVisits) |
           ((wins_half & kMaxWinsHalf) << 24) |
           (static_cast<std::uint64_t>(move_hint) << 49) |
           (static_cast<std::uint64_t>(epoch & kEpochMask) << 57);
  }

  [[nodiscard]] static constexpr View unpack(std::uint64_t data) noexcept {
    View v;
    v.visits = static_cast<std::uint32_t>(data & kMaxVisits);
    v.wins_half = (data >> 24) & kMaxWinsHalf;
    v.move_hint = static_cast<std::uint8_t>(data >> 49);
    v.epoch = static_cast<std::uint8_t>((data >> 57) & kEpochMask);
    return v;
  }

  // -- the lock-free hot path --------------------------------------------

  /// Validated lookup. A hit returns the entry regardless of its epoch —
  /// prior-move statistics are exactly the cross-move reuse the table
  /// exists for; the epoch only steers replacement.
  [[nodiscard]] std::optional<View> probe(std::uint64_t key) const {
    key = sanitize(key);
    stats_probes_.fetch_add(1, std::memory_order_relaxed);
    const Entry* shard = shard_for(key);
    const std::size_t base = slot_for(key);
    for (std::size_t i = 0; i < window_; ++i) {
      const Entry& e = shard[(base + i) & (slots_per_shard_ - 1)];
      const std::uint64_t check = e.check.load(std::memory_order_acquire);
      const std::uint64_t data = e.data.load(std::memory_order_relaxed);
      if ((check ^ data) == key) {
        stats_hits_.fetch_add(1, std::memory_order_relaxed);
        return unpack(data);
      }
    }
    return std::nullopt;
  }

  /// Accumulates a delta into the keyed entry (visits += delta_visits,
  /// wins_half += delta_wins_half, from the perspective of the side to move
  /// at the keyed position), refreshing its epoch and — when `move_hint` is
  /// not kNoHint — its best-move hint. Inserts (possibly evicting, see the
  /// replacement order above) when the key is absent. Safe from any number
  /// of threads; racing writers may lose a delta, never corrupt an entry.
  void store(std::uint64_t key, std::uint32_t delta_visits,
             std::uint64_t delta_wins_half,
             std::uint8_t move_hint = kNoHint) {
    key = sanitize(key);
    stats_stores_.fetch_add(1, std::memory_order_relaxed);
    const std::uint8_t now = epoch_.load(std::memory_order_relaxed);
    Entry* shard = shard_for_mutable(key);
    const std::size_t base = slot_for(key);

    // Pass 1: accumulate into an existing entry for this key.
    for (std::size_t i = 0; i < window_; ++i) {
      Entry& e = shard[(base + i) & (slots_per_shard_ - 1)];
      const std::uint64_t check = e.check.load(std::memory_order_acquire);
      const std::uint64_t data = e.data.load(std::memory_order_relaxed);
      if ((check ^ data) != key) continue;
      View v = unpack(data);
      if (v.visits < kMaxVisits) {  // saturated entries freeze, not truncate
        v.visits = saturate_visits(v.visits, delta_visits);
        v.wins_half = saturate_wins(v.wins_half, delta_wins_half);
      }
      if (move_hint != kNoHint) v.move_hint = move_hint;
      publish(e, key, pack(v.visits, v.wins_half, v.move_hint, now));
      return;
    }

    // Pass 2: insert. Victim preference: empty, then shallowest stale,
    // then shallowest current (displaced only by >= visits).
    Entry* victim = nullptr;
    bool victim_stale = false;
    std::uint32_t victim_visits = 0;
    bool victim_empty = false;
    for (std::size_t i = 0; i < window_; ++i) {
      Entry& e = shard[(base + i) & (slots_per_shard_ - 1)];
      const std::uint64_t check = e.check.load(std::memory_order_acquire);
      const std::uint64_t data = e.data.load(std::memory_order_relaxed);
      if (check == 0 && data == 0) {
        victim = &e;
        victim_empty = true;
        break;
      }
      const View v = unpack(data);
      const bool stale = v.epoch != now;
      const bool better =
          victim == nullptr ||
          (stale && !victim_stale) ||
          (stale == victim_stale && v.visits < victim_visits);
      if (better) {
        victim = &e;
        victim_stale = stale;
        victim_visits = v.visits;
      }
    }
    const std::uint32_t visits =
        delta_visits < kMaxVisits ? delta_visits : kMaxVisits;
    const std::uint64_t wins =
        delta_wins_half < kMaxWinsHalf ? delta_wins_half : kMaxWinsHalf;
    if (victim_empty) {
      stats_inserts_.fetch_add(1, std::memory_order_relaxed);
    } else if (victim_stale || victim_visits <= visits) {
      stats_inserts_.fetch_add(1, std::memory_order_relaxed);
      stats_evictions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;  // every incumbent is current and deeper: keep them
    }
    publish(*victim, key, pack(visits, wins, move_hint, now));
  }

  /// Advances the aging epoch (mod 16). Called once per move decision by
  /// the table's owner; entries written under previous epochs become
  /// replacement-preferred but stay probe-able.
  void bump_epoch() noexcept {
    epoch_.store(
        static_cast<std::uint8_t>(
            (epoch_.load(std::memory_order_relaxed) + 1) & kEpochMask),
        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint8_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return shards_ * slots_per_shard_;
  }
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_; }

  [[nodiscard]] Stats stats() const noexcept {
    Stats s;
    s.probes = stats_probes_.load(std::memory_order_relaxed);
    s.hits = stats_hits_.load(std::memory_order_relaxed);
    s.stores = stats_stores_.load(std::memory_order_relaxed);
    s.inserts = stats_inserts_.load(std::memory_order_relaxed);
    s.evictions = stats_evictions_.load(std::memory_order_relaxed);
    s.dropped = stats_dropped_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Entry {
    std::atomic<std::uint64_t> check{0};
    std::atomic<std::uint64_t> data{0};
  };
  static_assert(sizeof(Entry) == 16, "two-word lock-free entry");

  /// Key 0 would collide with the empty-slot encoding (check == data == 0
  /// validates key 0); remap it to an arbitrary fixed odd constant.
  [[nodiscard]] static constexpr std::uint64_t sanitize(
      std::uint64_t key) noexcept {
    return key != 0 ? key : 0x9e3779b97f4a7c15ULL;
  }

  [[nodiscard]] static constexpr std::uint32_t saturate_visits(
      std::uint32_t v, std::uint32_t d) noexcept {
    const std::uint64_t sum = static_cast<std::uint64_t>(v) + d;
    return sum < kMaxVisits ? static_cast<std::uint32_t>(sum) : kMaxVisits;
  }

  [[nodiscard]] static constexpr std::uint64_t saturate_wins(
      std::uint64_t w, std::uint64_t d) noexcept {
    const std::uint64_t sum = w + d;
    return sum < kMaxWinsHalf && sum >= w ? sum : kMaxWinsHalf;
  }

  /// Writer publication order: data first (relaxed), then the matching
  /// check with release. A reader that acquires the new check sees the new
  /// data or fails validation — never a silently mixed pair.
  static void publish(Entry& e, std::uint64_t key,
                      std::uint64_t data) noexcept {
    e.data.store(data, std::memory_order_relaxed);
    e.check.store(key ^ data, std::memory_order_release);
  }

  /// Top bits pick the shard, low bits the slot — independent streams of a
  /// well-mixed 64-bit key.
  [[nodiscard]] const Entry* shard_for(std::uint64_t key) const noexcept {
    return entries_.get() + ((key >> 58) & (shards_ - 1)) * slots_per_shard_;
  }
  [[nodiscard]] Entry* shard_for_mutable(std::uint64_t key) noexcept {
    return entries_.get() + ((key >> 58) & (shards_ - 1)) * slots_per_shard_;
  }
  [[nodiscard]] std::size_t slot_for(std::uint64_t key) const noexcept {
    return key & (slots_per_shard_ - 1);
  }

  std::size_t shards_ = 1;
  std::size_t slots_per_shard_ = 1;
  std::size_t window_ = 1;
  std::unique_ptr<Entry[]> entries_;
  std::atomic<std::uint8_t> epoch_{0};
  mutable std::atomic<std::uint64_t> stats_probes_{0};
  mutable std::atomic<std::uint64_t> stats_hits_{0};
  std::atomic<std::uint64_t> stats_stores_{0};
  std::atomic<std::uint64_t> stats_inserts_{0};
  std::atomic<std::uint64_t> stats_evictions_{0};
  std::atomic<std::uint64_t> stats_dropped_{0};
};

}  // namespace gpu_mcts::mcts
