// UCT-RAVE (Rapid Action Value Estimation / all-moves-as-first) — a classic
// MCTS strengthening the paper leaves to future work ("a more general task
// can and should be solved by the algorithm"). Included as a CPU-side
// extension: it needs the full playout move sequence per simulation, which
// the GPU schemes would have to ship back across PCIe per lane (the reason
// the 2011 kernels did not do it).
//
// Mechanics: besides (wins, visits), every node keeps AMAF statistics
// (rave_wins, rave_visits) updated whenever its move was played *anywhere
// later* in the simulation by the same player. Selection blends the two
// estimates with the hand-tuned beta schedule beta = sqrt(k / (3N + k))
// (Gelly & Silver's equivalence parameter).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "game/game_traits.hpp"
#include "mcts/config.hpp"
#include "mcts/searcher.hpp"
#include "mcts/stats.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_props.hpp"
#include "util/check.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::mcts {

struct RaveConfig {
  /// UCB exploration constant for the UCT part.
  double ucb_c = 0.5;
  /// RAVE equivalence parameter k: simulations at which the blend weight
  /// drops to half.
  double rave_k = 1000.0;
  std::size_t max_nodes = 1u << 20;
  std::uint64_t seed = 0x7a4eULL;
};

template <game::Game G>
class RaveSearcher final : public Searcher<G> {
 public:
  explicit RaveSearcher(RaveConfig config = {},
                        simt::HostProperties host = simt::xeon_x5670(),
                        simt::CostModel cost = simt::default_cost_model())
      : config_(config), host_(host), cost_(cost), seed_(config.seed) {}

  using Searcher<G>::choose_move;

  [[nodiscard]] typename G::Move choose_move(
      const typename G::State& state,
      const SearchBudget& budget) override {
    util::expects(!G::is_terminal(state), "choose_move on terminal state");
    util::WallTimer wall;
    const bool wall_limited = budget.wall_ms.has_value();
    StopReason stop_reason = StopReason::kBudget;
    // Round-boundary supervision, token before deadline — the same
    // attribution order as every other scheme (see tree_parallel.hpp).
    const auto should_stop = [&]() -> bool {
      if (budget.cancel != nullptr && budget.cancel->cancelled()) {
        stop_reason = StopReason::kCancelled;
        return true;
      }
      if (wall_limited && wall.elapsed_seconds() * 1000.0 >= *budget.wall_ms) {
        stop_reason = StopReason::kWallDeadline;
        return true;
      }
      return false;
    };
    util::VirtualClock clock(host_.clock_hz);
    const std::uint64_t deadline = clock.to_cycles(budget.virtual_seconds);
    util::XorShift128Plus rng(util::derive_seed(seed_, move_counter_++));

    reset(state);
    stats_ = {};

    // Moves of the current simulation: tree part + playout part, per player.
    std::vector<typename G::Move> path_moves;
    std::vector<game::Player> path_movers;

    do {
      path_moves.clear();
      path_movers.clear();

      // --- Selection / expansion ---
      NodeIndex current = 0;
      typename G::State sim_state = root_state_;
      std::uint32_t depth = 0;
      bool terminal = false;
      for (;;) {
        if (G::is_terminal(sim_state)) {
          terminal = true;
          break;
        }
        Node& node = nodes_[current];
        if (!node.expanded) expand(current, sim_state, rng);
        Node& fresh = nodes_[current];
        if (fresh.num_children == 0) break;  // node cap reached
        NodeIndex next;
        if (fresh.next_unexpanded < fresh.num_children) {
          next = fresh.first_child + fresh.next_unexpanded;
          ++nodes_[current].next_unexpanded;
        } else {
          next = best_child(current);
        }
        path_moves.push_back(nodes_[next].move);
        path_movers.push_back(G::player_to_move(sim_state));
        sim_state = G::apply(sim_state, nodes_[next].move);
        current = next;
        ++depth;
        if (nodes_[current].visits == 0) break;  // fresh node: play out
      }
      if (depth > stats_.max_depth) stats_.max_depth = depth;

      // --- Simulation, recording the move sequence for AMAF ---
      std::uint32_t plies = 0;
      std::array<typename G::Move, static_cast<std::size_t>(G::kMaxMoves)>
          moves{};
      while (!terminal) {
        const int n = G::legal_moves(sim_state, std::span(moves));
        if (n == 0) break;
        const auto pick = rng.next_below(static_cast<std::uint32_t>(n));
        path_moves.push_back(moves[pick]);
        path_movers.push_back(G::player_to_move(sim_state));
        sim_state = G::apply(sim_state, moves[pick]);
        ++plies;
      }
      const double value_first =
          game::value_of(G::outcome_for(sim_state, game::Player::kFirst));

      // --- Backpropagation with AMAF updates ---
      backpropagate_rave(current, value_first, path_moves, path_movers);

      clock.advance(static_cast<std::uint64_t>(
          1.4 * cost_.host_tree_op_cycles +  // AMAF bookkeeping overhead
          cost_.host_cycles_per_ply * static_cast<double>(plies)));
      stats_.simulations += 1;
      stats_.rounds += 1;
    } while (!should_stop() && clock.cycles() < deadline);

    stats_.stop_reason = stop_reason;
    stats_.tree_nodes = nodes_.size();
    stats_.virtual_seconds = clock.seconds();
    return best_move();
  }

  [[nodiscard]] const SearchStats& last_stats() const noexcept override {
    return stats_;
  }

  [[nodiscard]] std::string name() const override {
    return "UCT-RAVE CPU (k=" + std::to_string(config_.rave_k) + ")";
  }

  void reseed(std::uint64_t seed) override {
    seed_ = seed;
    move_counter_ = 0;
  }

 private:
  using NodeIndex = std::uint32_t;
  static constexpr NodeIndex kNone = 0xffffffffu;

  struct Node {
    NodeIndex parent = kNone;
    NodeIndex first_child = kNone;
    std::uint16_t num_children = 0;
    std::uint16_t next_unexpanded = 0;
    typename G::Move move{};
    game::Player mover = game::Player::kSecond;
    bool expanded = false;
    std::uint32_t visits = 0;
    double wins = 0.0;
    std::uint32_t rave_visits = 0;
    double rave_wins = 0.0;
  };

  void reset(const typename G::State& state) {
    nodes_.clear();
    root_state_ = state;
    Node root;
    root.mover = game::opponent_of(G::player_to_move(state));
    nodes_.push_back(root);
  }

  void expand(NodeIndex index, const typename G::State& state,
              util::XorShift128Plus& rng) {
    std::array<typename G::Move, static_cast<std::size_t>(G::kMaxMoves)>
        moves{};
    const int n = G::legal_moves(state, std::span(moves));
    nodes_[index].expanded = true;
    if (n == 0) return;
    if (nodes_.size() + static_cast<std::size_t>(n) > config_.max_nodes)
      return;
    for (int i = n - 1; i > 0; --i) {
      const auto j =
          static_cast<int>(rng.next_below(static_cast<std::uint32_t>(i + 1)));
      std::swap(moves[i], moves[j]);
    }
    const auto first = static_cast<NodeIndex>(nodes_.size());
    const game::Player mover = G::player_to_move(state);
    for (int i = 0; i < n; ++i) {
      Node child;
      child.parent = index;
      child.move = moves[i];
      child.mover = mover;
      nodes_.push_back(child);
    }
    nodes_[index].first_child = first;
    nodes_[index].num_children = static_cast<std::uint16_t>(n);
  }

  /// Blended UCT-RAVE score argmax over fully-visited children.
  [[nodiscard]] NodeIndex best_child(NodeIndex index) const {
    const Node& node = nodes_[index];
    const double log_parent =
        std::log(static_cast<double>(std::max(1u, node.visits)));
    NodeIndex best = node.first_child;
    double best_score = -1.0;
    for (NodeIndex c = node.first_child;
         c < node.first_child + node.num_children; ++c) {
      const Node& child = nodes_[c];
      const double v = static_cast<double>(child.visits);
      const double uct = child.wins / v;
      const double amaf =
          child.rave_visits > 0
              ? child.rave_wins / static_cast<double>(child.rave_visits)
              : uct;
      const double beta =
          std::sqrt(config_.rave_k / (3.0 * v + config_.rave_k));
      const double score = (1.0 - beta) * uct + beta * amaf +
                           config_.ucb_c * std::sqrt(log_parent / v);
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    return best;
  }

  /// Standard backprop plus AMAF: along the path, every sibling whose move
  /// appears later in the simulation (played by that sibling's mover) gets a
  /// RAVE update.
  void backpropagate_rave(NodeIndex leaf, double value_first,
                          const std::vector<typename G::Move>& path_moves,
                          const std::vector<game::Player>& path_movers) {
    // Level = index into path_moves of the move a node's children would
    // play; starts at the leaf's depth and decrements toward the root.
    std::uint32_t tree_depth = 0;
    for (NodeIndex n = leaf; nodes_[n].parent != kNone; n = nodes_[n].parent)
      ++tree_depth;
    std::size_t level = tree_depth;

    for (NodeIndex n = leaf; n != kNone; n = nodes_[n].parent) {
      Node& node = nodes_[n];
      node.visits += 1;
      node.wins += node.mover == game::Player::kFirst ? value_first
                                                      : 1.0 - value_first;
      // AMAF for the children of this node: moves played from this level
      // onward by the child's mover.
      if (node.num_children > 0) {
        for (NodeIndex c = node.first_child;
             c < node.first_child + node.num_children; ++c) {
          Node& child = nodes_[c];
          for (std::size_t i = level; i < path_moves.size(); ++i) {
            if (path_movers[i] == child.mover &&
                path_moves[i] == child.move) {
              child.rave_visits += 1;
              child.rave_wins += child.mover == game::Player::kFirst
                                     ? value_first
                                     : 1.0 - value_first;
              break;
            }
          }
        }
      }
      if (level > 0) --level;
    }
  }

  [[nodiscard]] typename G::Move best_move() const {
    const Node& root = nodes_[0];
    util::check(root.num_children > 0, "best_move needs an expanded root");
    NodeIndex best = root.first_child;
    for (NodeIndex c = root.first_child;
         c < root.first_child + root.num_children; ++c) {
      if (nodes_[c].visits > nodes_[best].visits) best = c;
    }
    return nodes_[best].move;
  }

  RaveConfig config_;
  simt::HostProperties host_;
  simt::CostModel cost_;
  std::uint64_t seed_;
  std::uint64_t move_counter_ = 0;
  SearchStats stats_;
  std::vector<Node> nodes_;
  typename G::State root_state_{};
};

}  // namespace gpu_mcts::mcts
