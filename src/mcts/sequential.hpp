// The baseline: single-threaded MCTS on one CPU core — the opponent every
// GPU player faces in the paper's Figures 5-8 ("a GPU Player is playing
// against one CPU core running sequential MCTS").
//
// Each iteration (select -> expand -> one playout -> backpropagate) charges
// the virtual clock with the host cost model's tree-op cost plus the
// playout's measured ply count, grounding the calibrated ~10^4
// iterations/second rate in actual playout lengths.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "game/game_traits.hpp"
#include "mcts/config.hpp"
#include "mcts/playout.hpp"
#include "mcts/searcher.hpp"
#include "mcts/stats.hpp"
#include "mcts/tree.hpp"
#include "obs/trace.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_props.hpp"
#include "util/check.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::mcts {

template <game::Game G>
class SequentialSearcher final : public Searcher<G> {
 public:
  explicit SequentialSearcher(SearchConfig config = {},
                              simt::HostProperties host = simt::xeon_x5670(),
                              simt::CostModel cost = simt::default_cost_model())
      : config_(config), host_(host), cost_(cost), seed_(config.seed) {}

  using Searcher<G>::choose_move;

  [[nodiscard]] typename G::Move choose_move(
      const typename G::State& state, const SearchBudget& budget) override {
    util::expects(!G::is_terminal(state), "choose_move on terminal state");
    util::WallTimer wall;
    const bool wall_limited = budget.wall_ms.has_value();
    StopReason stop_reason = StopReason::kBudget;
    // Iteration-boundary stop check (token before deadline); the do-while
    // still guarantees one iteration, so best_move() stays well-defined
    // even when the budget arrives already cancelled or expired.
    const auto should_stop = [&]() -> bool {
      if (budget.cancel != nullptr && budget.cancel->cancelled()) {
        stop_reason = StopReason::kCancelled;
        return true;
      }
      if (wall_limited && wall.elapsed_seconds() * 1000.0 >= *budget.wall_ms) {
        stop_reason = StopReason::kWallDeadline;
        return true;
      }
      return false;
    };
    util::VirtualClock clock(host_.clock_hz);
    const std::uint64_t deadline = clock.to_cycles(budget.virtual_seconds);

    Tree<G> tree(state, config_, util::derive_seed(seed_, move_counter_));
    util::XorShift128Plus rng(util::derive_seed(seed_, move_counter_ ^ 0xfeedULL));
    ++move_counter_;

    stats_ = {};
    if (tracer_ != nullptr) {
      (void)tracer_->begin_search(name());
      tracer_->set_frequency(clock.frequency_hz());
      tracer_->begin(obs::Tracer::kHostTrack, "search", clock.cycles());
    }
    // do-while: even a zero budget performs one iteration so the root is
    // expanded and best_move() is well-defined.
    do {
      const Selection<G> sel = tree.select();
      double value_sum;
      std::uint32_t plies = 0;
      if (sel.terminal) {
        value_sum = game::value_of(
            G::outcome_for(sel.state, game::Player::kFirst));
      } else {
        const PlayoutResult playout = random_playout<G>(sel.state, rng);
        value_sum = playout.value_first;
        plies = playout.plies;
      }
      tree.backpropagate(sel.node, value_sum, 1, value_sum * value_sum);
      clock.advance(static_cast<std::uint64_t>(
          cost_.host_tree_op_cycles +
          cost_.host_cycles_per_ply * static_cast<double>(plies)));
      stats_.simulations += 1;
      stats_.rounds += 1;
      stats_.cpu_iterations += 1;
      if (tracer_ != nullptr) {
        tracer_->metrics().histogram("playout_plies").observe(plies);
      }
    } while (!should_stop() && clock.cycles() < deadline);

    stats_.stop_reason = stop_reason;
    stats_.tree_nodes = tree.node_count();
    stats_.max_depth = tree.max_depth();
    stats_.virtual_seconds = clock.seconds();
    if (tracer_ != nullptr) {
      tracer_->end(obs::Tracer::kHostTrack, "search", clock.cycles());
      tracer_->counter(obs::Tracer::kHostTrack, "iterations", clock.cycles(),
                       static_cast<double>(stats_.simulations));
      tracer_->metrics().counter("cpu_iterations").add(stats_.cpu_iterations);
    }
    return tree.best_move();
  }

  [[nodiscard]] const SearchStats& last_stats() const noexcept override {
    return stats_;
  }

  [[nodiscard]] std::string name() const override {
    return "sequential CPU (1 core)";
  }

  void reseed(std::uint64_t seed) override {
    seed_ = seed;
    move_counter_ = 0;
  }

  void set_tracer(obs::Tracer* tracer) noexcept override { tracer_ = tracer; }

 private:
  SearchConfig config_;
  simt::HostProperties host_;
  simt::CostModel cost_;
  std::uint64_t seed_;
  std::uint64_t move_counter_ = 0;
  SearchStats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace gpu_mcts::mcts
