// Search configuration shared by every scheme.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gpu_mcts::mcts {

/// UCB constant for searchers that backpropagate *aggregated* simulation
/// batches (the GPU schemes: every tree visit carries threads-per-block
/// playouts). With visit counts inflated by the batch size, the UCT default
/// sqrt(2) keeps the exploration term above any realistic win-rate gap and
/// the tree degenerates to breadth-first flat sampling; the constant must
/// shrink roughly with sqrt(batch). This is precisely the paper's
/// "C - a parameter to be adjusted" (§II.1); the ablation_ucb bench sweeps
/// it and shows the tuning matters far more for the GPU schemes.
inline constexpr double kBatchUcbC = 0.25;

/// Node-selection rule used during the descent.
enum class SelectionPolicy : std::uint8_t {
  kUcb1,       ///< the paper's UCB formula (§II.1)
  kUcb1Tuned,  ///< Auer et al.'s variance-aware bound (extension)
};

class TranspositionTable;

struct SearchConfig {
  /// UCB exploration constant ("C - a parameter to be adjusted", paper §II).
  /// sqrt(2) is the UCT default for 1-playout iterations; batch-
  /// backpropagating searchers should use kBatchUcbC (the player factory
  /// presets do this automatically).
  double ucb_c = 1.4142135623730951;
  /// Which selection bound to use; kUcb1 reproduces the paper.
  SelectionPolicy selection = SelectionPolicy::kUcb1;
  /// Hard cap on tree nodes per tree; expansion stops (selection still
  /// descends) once reached, bounding memory like a fixed device-side pool.
  std::size_t max_nodes = 1u << 20;
  /// Root RNG seed; all per-tree / per-lane streams derive from it.
  std::uint64_t seed = 0x5eedULL;
  /// Optional shared transposition table (mcts/transposition.hpp), not
  /// owned. Trees built from this config attach to it: expansion seeds new
  /// children from table priors and backpropagation feeds deltas back.
  /// nullptr (the default) keeps every search path bit-exact with a build
  /// that predates the table — no hashing, no probes, no RNG divergence.
  TranspositionTable* transposition = nullptr;
};

}  // namespace gpu_mcts::mcts
