// ConcurrentTree: the MCTS game tree rebuilt for *real* shared-memory
// parallelism — N host threads run select → expand → playout → backprop
// concurrently against one tree, with no global lock anywhere on the hot
// path. This is the modern shared-tree baseline the 2011 paper lacks (it
// dismisses tree parallelism because fine-grained synchronization was
// impossible on that era's GPUs); see DESIGN.md §15.
//
// Concurrency design, piece by piece:
//  * Bump-arena allocation. Nodes live in fixed-size chunks allocated on
//    demand; a relaxed-atomic high-water mark hands out contiguous index
//    ranges via compare-exchange (never overshooting the cap, so a capped
//    tree behaves exactly like the sequential arena: the node stays
//    unexpanded and is re-attempted when asked again). Node indices are
//    stable forever — there is no std::vector reallocation to invalidate
//    concurrent readers.
//  * Per-node expansion latch. The first thread to arrive at an unexpanded
//    node compare-exchanges kUnexpanded → kExpanding and becomes the sole
//    expander; it generates moves, claims an index range, initializes the
//    children with plain stores (it owns them exclusively), and publishes
//    with a release store of kExpanded. Latecomers that see kExpanding do
//    NOT spin: they treat the node as a playout leaf and keep working — the
//    lock-free pipeline discipline of Mirsoleimani et al. (PAPERS.md).
//  * Atomic statistics. visits / wins / in-flight counts are relaxed
//    atomics; wins are stored as fixed-point half-points (win = 2,
//    draw = 1, loss = 0) in a uint64 so draws accumulate exactly — no
//    floating-point read-modify-write, no lost updates.
//  * Virtual loss + WU-UCT. Selection increments an `inflight` counter on
//    every node along its path (decremented by backpropagation). The same
//    counter serves two selection policies: classic virtual loss charges
//    each in-flight pass as `virtual_loss` lost visits (pessimistic mean),
//    while WU-UCT ("Watch the Unobserved", PAPERS.md) leaves the observed
//    mean untouched and only feeds the unobserved count O(s) into the
//    exploration term. shared_selection_score below implements both.
//
// Unlike mcts::Tree, results are interleaving-dependent: which thread wins
// an expansion race decides the RNG stream that shuffles the children.
// With one worker the tree is exactly as deterministic as the sequential
// arena; that degenerate case is the seeded reference the tests pin.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "game/game_traits.hpp"
#include "mcts/config.hpp"
#include "mcts/tree.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::mcts {

/// Inputs of one child's selection score, snapshotted from the atomics.
struct SharedScoreInputs {
  /// Observed win credit for the child's mover, in half-points (draw = 1).
  std::uint64_t wins_half = 0;
  /// Completed (backpropagated) visits of the child.
  std::uint32_t visits = 0;
  /// In-flight selections through the child — WU-UCT's O(s).
  std::uint32_t inflight = 0;
  /// Completed visits of the parent.
  std::uint64_t parent_visits = 0;
  /// In-flight selections through the parent.
  std::uint32_t parent_inflight = 0;
};

/// The shared-tree selection bound. With `wu_uct` off this is UCB1 over
/// virtual-loss-adjusted counts: every in-flight selection counts as
/// `virtual_loss` extra visits with zero wins, so the mean of a busy child
/// sags and concurrent workers spread out. With `wu_uct` on it is the
/// WU-UCT bound: the mean uses *observed* outcomes only (in-flight work is
/// not presumed lost) and the unobserved counts O(s) inflate both
/// occurrence terms, shrinking the exploration bonus of a child that
/// already has work racing toward it. Exposed as a free function so tests
/// can pin its monotonicity directly.
[[nodiscard]] inline double shared_selection_score(
    const SharedScoreInputs& in, double ucb_c, std::uint32_t virtual_loss,
    bool wu_uct) {
  const double observed = static_cast<double>(in.visits);
  const double wins = static_cast<double>(in.wins_half) / 2.0;
  double n_eff;     // the child occurrence count under the policy
  double parent_eff;
  double mean;
  if (wu_uct) {
    n_eff = observed + static_cast<double>(in.inflight);
    parent_eff = static_cast<double>(in.parent_visits) +
                 static_cast<double>(in.parent_inflight);
    // Unobserved arms keep a neutral prior; observed means stay exact.
    mean = in.visits > 0 ? wins / observed : 0.5;
  } else {
    const double loss = static_cast<double>(virtual_loss);
    n_eff = observed + loss * static_cast<double>(in.inflight);
    parent_eff = static_cast<double>(in.parent_visits) +
                 loss * static_cast<double>(in.parent_inflight);
    // In-flight passes count as losses: wins stay, the denominator grows.
    mean = n_eff > 0.0 ? wins / n_eff : 0.5;
  }
  const double log_parent = std::log(std::max(1.0, parent_eff));
  const double explore = std::sqrt(log_parent / std::max(1.0, n_eff));
  return mean + ucb_c * explore;
}

template <game::Game G>
class ConcurrentTree {
 public:
  using State = typename G::State;
  using Move = typename G::Move;

  /// Node of the concurrent arena. Immutable identity fields (parent, move,
  /// mover) are written once by the expanding thread before the release
  /// publication; statistics are relaxed atomics thereafter.
  struct Node {
    NodeIndex parent = kNoNode;
    NodeIndex first_child = kNoNode;
    std::uint16_t num_children = 0;
    Move move{};
    game::Player mover = game::Player::kSecond;
    /// kUnexpanded → kExpanding (CAS latch) → kExpanded (release publish).
    /// A capped expansion stores kUnexpanded back so growth resumes later.
    std::atomic<std::uint8_t> expand_state{0};
    /// Children [0, next_unexpanded) have been claimed for a first visit.
    std::atomic<std::uint32_t> next_unexpanded{0};
    /// Completed (backpropagated) visits.
    std::atomic<std::uint32_t> visits{0};
    /// Selections currently in flight through this node — the virtual-loss
    /// charge and WU-UCT's O(s) at once. Balanced by backpropagate().
    std::atomic<std::uint32_t> inflight{0};
    /// Win credit for `mover` in half-points (win 2, draw 1, loss 0).
    std::atomic<std::uint64_t> wins_half{0};
    /// Position hash (G::hash of the state this node represents), written
    /// once by the expanding thread before the kExpanded release publish —
    /// an identity field like parent/move/mover, not an atomic. Only
    /// maintained when a transposition table is attached; 0 otherwise.
    std::uint64_t hash = 0;
  };

  static constexpr std::uint8_t kUnexpanded = 0;
  static constexpr std::uint8_t kExpanding = 1;
  static constexpr std::uint8_t kExpanded = 2;

  ConcurrentTree(const State& root_state, const SearchConfig& config,
                 std::uint32_t virtual_loss, bool wu_uct)
      : config_(config),
        virtual_loss_(virtual_loss),
        wu_uct_(wu_uct),
        capacity_(static_cast<NodeIndex>(
            std::min<std::size_t>(config.max_nodes, kMaxCapacity))),
        chunks_((capacity_ + kChunkSize - 1) / kChunkSize),
        root_state_(root_state) {
    const NodeIndex root = try_allocate(1);
    util::check(root == 0, "root allocates index 0");
    Node& r = node_mutable(root);
    r.mover = game::opponent_of(G::player_to_move(root_state));
    if (config_.transposition != nullptr) r.hash = G::hash(root_state);
    r.expand_state.store(kUnexpanded, std::memory_order_relaxed);
  }

  ~ConcurrentTree() {
    for (auto& slot : chunks_) delete[] slot.load(std::memory_order_acquire);
  }

  ConcurrentTree(const ConcurrentTree&) = delete;
  ConcurrentTree& operator=(const ConcurrentTree&) = delete;

  /// One selection + (possible) expansion pass. Safe to call from any
  /// number of threads concurrently; `rng` must be the calling thread's
  /// own stream. Applies one unit of in-flight charge to every node on the
  /// returned path — backpropagate() removes it.
  [[nodiscard]] Selection<G> select(util::XorShift128Plus& rng) {
    Selection<G> sel;
    sel.node = 0;
    sel.state = root_state_;
    for (;;) {
      Node& nd = node_mutable(sel.node);
      nd.inflight.fetch_add(1, std::memory_order_relaxed);
      if (G::is_terminal(sel.state)) {
        sel.terminal = true;
        break;
      }
      std::uint8_t st = nd.expand_state.load(std::memory_order_acquire);
      if (st == kUnexpanded) {
        std::uint8_t expected = kUnexpanded;
        if (nd.expand_state.compare_exchange_strong(
                expected, kExpanding, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          expand(sel.node, sel.state, rng);
          st = nd.expand_state.load(std::memory_order_acquire);
        } else {
          st = expected;
        }
      }
      if (st != kExpanded) {
        // Another thread holds the expansion latch (or the arena is
        // capped): don't spin — play out from here and keep the pipeline
        // moving.
        break;
      }
      if (nd.num_children == 0) break;  // expanded terminal leaf
      // One previously-unvisited child per pass, claimed atomically so two
      // threads never "discover" the same child.
      std::uint32_t k = nd.next_unexpanded.load(std::memory_order_relaxed);
      NodeIndex next = kNoNode;
      while (k < nd.num_children) {
        if (nd.next_unexpanded.compare_exchange_weak(
                k, k + 1, std::memory_order_relaxed)) {
          next = nd.first_child + static_cast<NodeIndex>(k);
          break;
        }
      }
      if (next != kNoNode) {
        sel.state = G::apply(sel.state, node(next).move);
        sel.node = next;
        ++sel.depth;
        node_mutable(next).inflight.fetch_add(1, std::memory_order_relaxed);
        sel.terminal = G::is_terminal(sel.state);
        break;
      }
      next = best_child(sel.node);
      sel.state = G::apply(sel.state, node(next).move);
      sel.node = next;
      ++sel.depth;
    }
    // Lock-free running max for the depth statistic.
    std::uint32_t seen = max_depth_.load(std::memory_order_relaxed);
    while (sel.depth > seen &&
           !max_depth_.compare_exchange_weak(seen, sel.depth,
                                             std::memory_order_relaxed)) {
    }
    return sel;
  }

  /// Adds one completed simulation along the path to the root and removes
  /// the in-flight charge select() applied — the two must always pair.
  void backpropagate(NodeIndex leaf, double value_first) {
    util::expects(leaf < allocated(), "backpropagate into live node");
    util::expects(value_first >= 0.0 && value_first <= 1.0,
                  "playout value within [0, 1]");
    const auto half_first =
        static_cast<std::uint64_t>(std::lround(value_first * 2.0));
    TranspositionTable* tt = config_.transposition;
    std::uint8_t hint = TranspositionTable::kNoHint;
    for (NodeIndex n = leaf; n != kNoNode;) {
      Node& nd = node_mutable(n);
      nd.visits.fetch_add(1, std::memory_order_relaxed);
      nd.wins_half.fetch_add(nd.mover == game::Player::kFirst
                                 ? half_first
                                 : 2u - half_first,
                             std::memory_order_relaxed);
      nd.inflight.fetch_sub(1, std::memory_order_relaxed);
      if (tt != nullptr) {
        // Delta-only feed into the shared table, scored for the side to
        // move at the keyed position (the opponent of nd.mover); priors
        // seeded at expansion are already in there.
        tt->store(nd.hash, 1,
                  nd.mover == game::Player::kFirst ? 2u - half_first
                                                   : half_first,
                  hint);
        hint = static_cast<std::uint8_t>(nd.move);
      }
      n = nd.parent;
    }
  }

  /// The robust-child rule, as in mcts::Tree. Call only at rest (workers
  /// joined); in sanitize builds an outstanding in-flight charge trips a
  /// contract check rather than silently skewing the visit ranking.
  [[nodiscard]] Move best_move() const {
#ifdef GPU_MCTS_SANITIZE_ENABLED
    util::check(outstanding_losses() == 0,
                "no in-flight selections at best_move");
#endif
    const Node& root = node(0);
    util::check(root.num_children > 0, "best_move needs an expanded root");
    NodeIndex best = root.first_child;
    for (NodeIndex c = root.first_child;
         c < root.first_child + root.num_children; ++c) {
      const Node& cand = node(c);
      const Node& incumbent = node(best);
      const std::uint32_t cv = cand.visits.load(std::memory_order_relaxed);
      const std::uint32_t iv =
          incumbent.visits.load(std::memory_order_relaxed);
      if (cv > iv || (cv == iv && win_rate(cand) > win_rate(incumbent))) {
        best = c;
      }
    }
    return node(best).move;
  }

  /// Sum of all in-flight charges across the arena. Zero exactly when every
  /// select() has been paired with a backpropagate() — the loss-balance
  /// invariant the tests (and the sanitize-mode best_move check) pin.
  [[nodiscard]] std::uint64_t outstanding_losses() const {
    std::uint64_t total = 0;
    const NodeIndex end = allocated();
    for (NodeIndex i = 0; i < end; ++i) {
      total += node(i).inflight.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] NodeIndex allocated() const noexcept {
    return std::min(high_water_.load(std::memory_order_acquire), capacity_);
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return allocated();
  }
  [[nodiscard]] std::uint32_t max_depth() const noexcept {
    return max_depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t root_visits() const noexcept {
    return node(0).visits.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const State& root_state() const noexcept {
    return root_state_;
  }
  [[nodiscard]] const Node& node(NodeIndex i) const {
    return chunks_[i >> kChunkShift].load(std::memory_order_acquire)
        [i & kChunkMask];
  }

 private:
  /// Same prior cap as mcts::Tree (see its kTtSeedVisitCap rationale).
  static constexpr std::uint32_t kTtSeedVisitCap = 64;

  static constexpr std::uint32_t kChunkShift = 12;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;  // 4096
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;
  /// NodeIndex is 32-bit and kNoNode is reserved.
  static constexpr std::size_t kMaxCapacity =
      static_cast<std::size_t>(kNoNode) - 1;

  [[nodiscard]] Node& node_mutable(NodeIndex i) {
    return chunks_[i >> kChunkShift].load(std::memory_order_acquire)
        [i & kChunkMask];
  }

  static double win_rate(const Node& n) noexcept {
    const std::uint32_t v = n.visits.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<double>(
                       n.wins_half.load(std::memory_order_relaxed)) /
                       (2.0 * static_cast<double>(v))
                 : 0.0;
  }

  /// Claims `n` contiguous node indices, or kNoNode when the cap would be
  /// exceeded. The CAS loop never overshoots the high-water mark, so a
  /// capped tree resumes cleanly if capacity concerns ever change.
  [[nodiscard]] NodeIndex try_allocate(std::uint32_t n) {
    NodeIndex cur = high_water_.load(std::memory_order_relaxed);
    do {
      if (static_cast<std::uint64_t>(cur) + n > capacity_) return kNoNode;
    } while (!high_water_.compare_exchange_weak(
        cur, cur + n, std::memory_order_relaxed));
    ensure_chunks(cur, n);
    return cur;
  }

  /// Makes every chunk covering [first, first + n) exist. Losers of the
  /// install race free their allocation; the winning pointer is published
  /// with release so readers see fully-constructed nodes.
  void ensure_chunks(NodeIndex first, std::uint32_t n) {
    const std::uint32_t lo = first >> kChunkShift;
    const std::uint32_t hi = (first + n - 1) >> kChunkShift;
    for (std::uint32_t c = lo; c <= hi; ++c) {
      if (chunks_[c].load(std::memory_order_acquire) != nullptr) continue;
      Node* fresh = new Node[kChunkSize];
      Node* expected = nullptr;
      if (!chunks_[c].compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        delete[] fresh;
      }
    }
  }

  /// Runs under the expansion latch: the caller is the unique thread that
  /// moved this node to kExpanding. Publishes children (or a terminal
  /// leaf) with kExpanded; a capped allocation stores kUnexpanded back so
  /// a later pass retries, exactly like the sequential arena.
  void expand(NodeIndex index, const State& state,
              util::XorShift128Plus& rng) {
    std::array<Move, static_cast<std::size_t>(G::kMaxMoves)> moves{};
    const int n = G::legal_moves(state, std::span(moves));
    Node& nd = node_mutable(index);
    if (n == 0) {
      nd.expand_state.store(kExpanded, std::memory_order_release);
      return;
    }
    const NodeIndex first = try_allocate(static_cast<std::uint32_t>(n));
    if (first == kNoNode) {
      nd.expand_state.store(kUnexpanded, std::memory_order_release);
      return;
    }
    // Shuffle so unvisited-child order is unbiased (Fisher-Yates). Which
    // thread's stream shuffles is interleaving-dependent — the documented
    // source of run-to-run variation at workers > 1.
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<int>(
          rng.next_below(static_cast<std::uint32_t>(i + 1)));
      std::swap(moves[i], moves[j]);
    }
    TranspositionTable* tt = config_.transposition;
    if (tt != nullptr) {
      // Front-load the table's best-move hint (post-shuffle, so the RNG
      // stream is table-independent).
      if (const auto here = tt->probe(nd.hash);
          here && here->move_hint != TranspositionTable::kNoHint) {
        for (int i = 0; i < n; ++i) {
          if (static_cast<std::uint8_t>(moves[i]) == here->move_hint) {
            std::swap(moves[0], moves[i]);
            break;
          }
        }
      }
    }
    const game::Player mover = G::player_to_move(state);
    for (int i = 0; i < n; ++i) {
      Node& child = node_mutable(first + static_cast<NodeIndex>(i));
      child.parent = index;
      child.move = moves[i];
      child.mover = mover;
      if (tt != nullptr) {
        // The expander owns these nodes until the kExpanded release publish
        // below, so plain/relaxed initialization of the atomics is safe.
        const State child_state = G::apply(state, moves[i]);
        child.hash = G::hash(child_state);
        if (const auto hit = tt->probe(child.hash); hit && hit->visits > 0) {
          // Capped prior, converted from side-to-move (table) to `mover`
          // (node) perspective: node half-points = 2*visits - stm.
          const std::uint32_t sv = hit->visits < kTtSeedVisitCap
                                       ? hit->visits
                                       : kTtSeedVisitCap;
          const std::uint64_t stm_half =
              (hit->wins_half * sv + hit->visits / 2) / hit->visits;
          child.visits.store(sv, std::memory_order_relaxed);
          child.wins_half.store(2ull * sv - stm_half,
                                std::memory_order_relaxed);
        }
      }
    }
    nd.first_child = first;
    nd.num_children = static_cast<std::uint16_t>(n);
    nd.expand_state.store(kExpanded, std::memory_order_release);
  }

  /// Score-argmax over the children of `index` under the configured policy
  /// (virtual loss or WU-UCT). A child that is neither visited nor
  /// in-flight is preferred outright (first-play urgency).
  [[nodiscard]] NodeIndex best_child(NodeIndex index) const {
    const Node& parent = node(index);
    SharedScoreInputs in;
    in.parent_visits = parent.visits.load(std::memory_order_relaxed);
    in.parent_inflight = parent.inflight.load(std::memory_order_relaxed);
    NodeIndex best = parent.first_child;
    double best_score = -1.0;
    for (NodeIndex c = parent.first_child;
         c < parent.first_child + parent.num_children; ++c) {
      const Node& child = node(c);
      in.visits = child.visits.load(std::memory_order_relaxed);
      in.inflight = child.inflight.load(std::memory_order_relaxed);
      if (in.visits == 0 && in.inflight == 0) return c;
      in.wins_half = child.wins_half.load(std::memory_order_relaxed);
      const double score =
          shared_selection_score(in, config_.ucb_c, virtual_loss_, wu_uct_);
#ifdef GPU_MCTS_SANITIZE_ENABLED
      util::check(!std::isnan(score), "selection score must not be NaN");
#endif
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    return best;
  }

  SearchConfig config_;
  std::uint32_t virtual_loss_;
  bool wu_uct_;
  NodeIndex capacity_;
  std::vector<std::atomic<Node*>> chunks_;
  std::atomic<NodeIndex> high_water_{0};
  std::atomic<std::uint32_t> max_depth_{0};
  State root_state_{};
};

}  // namespace gpu_mcts::mcts
