// SearchService: the multi-tenant serving layer (DESIGN.md §13).
//
// A long-lived service owns one VirtualGpu (and with it the exec thread
// pool) and multiplexes many concurrent search *sessions* onto it. A
// session is one game: open_session pins its SchemeSpec and seed, submit
// enqueues one move decision (a *ticket*) at a time, poll/wait retrieve the
// {move, SearchStats} result, cancel stops an in-flight ticket
// cooperatively, close_session retires it.
//
// Scheduling: the service runs on its own virtual timeline. Each service
// round an EDF-within-priority-class scheduler picks the runnable tickets
// (per session, the head of its FIFO queue whose arrival time has come),
// packs their block counts into the service grid greedily in deadline
// order, and runs one combined round through SessionCohortSource — the
// cross-session cohort batching that generalizes the paper's block-parallel
// grid-filling to independent games. The service clock then advances by the
// shared kernel charge plus the riders' serialized host phases.
//
// Determinism: rounds are driven entirely by the calling thread (wait /
// run_until_idle) under the service mutex; arrivals are *virtual* times, so
// a fixed submit schedule yields an identical round-by-round schedule — and
// identical results, stats, latencies, and traces — on every run and at
// every exec thread count (the pool only partitions bit-stable work; see
// DESIGN.md §9). Cancellation is the one intentional nondeterminism: the
// token is an atomic read at round boundaries.
//
// Admission control: at most `max_sessions` sessions are open at once and
// each session's ticket queue is bounded by `max_queued_per_session`; both
// overflows throw AdmissionError (the caller's backpressure signal,
// distinct from contract violations).
//
// Isolation: per-session RNG streams (MultiplexKernel's identity remap +
// per-ticket seeds derived exactly as the standalone searcher derives
// them), per-session SearchStats, and per-session obs tracks — an optional
// per-session Tracer carries the standalone-identical event stream, and a
// service-level tracer gets one "serve.session.<id>" lifecycle track per
// session. With a single session the service result is bit-identical to
// BlockParallelGpuSearcher: same move, same stats, same trace hash
// (tests/serve/test_service.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/spec.hpp"
#include "game/game_traits.hpp"
#include "mcts/budget.hpp"
#include "mcts/stats.hpp"
#include "mcts/transposition.hpp"
#include "obs/trace.hpp"
#include "parallel/driver/session_source.hpp"
#include "simt/geometry.hpp"
#include "simt/vgpu.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace gpu_mcts::serve {

using SessionId = std::uint64_t;
using TicketId = std::uint64_t;

/// Capacity backpressure: session limit reached or a session's ticket queue
/// full. Callers shed or retry; this is load, not a bug (contract
/// violations throw util::ContractViolation as everywhere else).
class AdmissionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServiceOptions {
  /// The shared device grid tickets are packed into. Every session's
  /// threads_per_block must match the grid's; a session's block count is
  /// its per-round share and must fit the grid.
  simt::LaunchConfig grid{.blocks = 112, .threads_per_block = 128};
  /// Admission caps (AdmissionError beyond either).
  int max_sessions = 64;
  std::size_t max_queued_per_session = 16;
  /// Modeled hardware, shared by every session (a session spec's own
  /// device/host/cost fields are ignored — one physical device).
  simt::DeviceProperties device = simt::tesla_c2050();
  simt::HostProperties host = simt::xeon_x5670();
  simt::CostModel cost = simt::default_cost_model();
  /// Execution backend for the shared VirtualGpu (wall-clock only;
  /// results are bit-identical at every thread count).
  simt::ExecutionPolicy exec = simt::ExecutionPolicy::from_env();
  /// Shared transposition table size in megabytes; 0 (the default) runs
  /// without one, bit-identical to the pre-table service. When set, every
  /// session's trees attach to ONE service-owned table — cross-session
  /// statistics sharing for tenants playing the same game, the serving-side
  /// analogue of the "+tt:<mb>" scheme suffix (which sessions themselves
  /// must not carry; the service owns the table).
  int transposition_mb = 0;
};

/// Per-ticket scheduling knobs.
struct SubmitOptions {
  /// Priority class; lower is more urgent. EDF orders within a class.
  int priority = 0;
  /// EDF deadline, in virtual seconds after arrival. Defaults to the
  /// budget's virtual_seconds (a search wants to be done about when its
  /// budget would run out).
  std::optional<double> deadline_virtual_seconds;
  /// Arrival on the *service* virtual timeline, in seconds. The scheduler
  /// will not start the ticket before this; the load generator uses it to
  /// replay a seeded Poisson schedule deterministically. Defaults to "now";
  /// past times clamp to now.
  std::optional<double> arrival_virtual_seconds;
};

/// A finished ticket: the move, the full per-search stats (stop_reason
/// included), and the service-timeline latency bookkeeping.
template <game::Game G>
struct MoveResult {
  typename G::Move move{};
  mcts::SearchStats stats;
  double arrival_virtual_seconds = 0.0;
  double completion_virtual_seconds = 0.0;

  [[nodiscard]] double latency_virtual_seconds() const noexcept {
    return completion_virtual_seconds - arrival_virtual_seconds;
  }
};

template <game::Game G>
class SearchService {
 public:
  explicit SearchService(ServiceOptions options = {})
      : options_(options),
        gpu_(options.device, options.host, options.cost),
        clock_(options.host.clock_hz) {
    simt::validate(options_.grid, gpu_.device());
    util::expects(options_.max_sessions >= 1, "service admits sessions");
    util::expects(options_.max_queued_per_session >= 1,
                  "service admits tickets");
    util::expects(options_.transposition_mb >= 0 &&
                      options_.transposition_mb <= 4096,
                  "transposition table size in 0..4096 megabytes");
    if (options_.transposition_mb > 0) {
      transposition_ = std::make_unique<mcts::TranspositionTable>(
          mcts::TranspositionTable::entries_for_megabytes(
              options_.transposition_mb));
    }
    gpu_.set_execution_policy(options_.exec);
  }

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Attaches the service-level tracer: one "serve.session.<id>" track per
  /// subsequently opened session, carrying session/ticket lifecycle
  /// instants on the service timeline. Attach before opening sessions.
  void set_tracer(obs::Tracer* tracer) {
    const std::lock_guard lock(mu_);
    service_tracer_ = tracer;
    if (tracer != nullptr) {
      (void)tracer->begin_search("serve");
      tracer->set_frequency(clock_.frequency_hz());
    }
  }

  /// Opens a session: one tenant game searching under `spec` (block-gpu
  /// only — the scheme whose grid the service generalizes) with the given
  /// experiment seed. `tracer`, when non-null, receives this session's
  /// standalone-identical search event stream (one begin_search epoch per
  /// ticket) and must outlive the session; it must be driven from the
  /// thread that drives the service. Throws AdmissionError at the session
  /// cap.
  [[nodiscard]] SessionId open_session(const engine::SchemeSpec& spec,
                                       std::uint64_t seed,
                                       obs::Tracer* tracer = nullptr) {
    const std::lock_guard lock(mu_);
    util::expects(spec.scheme == "block-gpu",
                  "service sessions run the block-gpu scheme");
    util::expects(
        spec.threads_per_block == options_.grid.threads_per_block,
        "session block size matches the service grid");
    util::expects(spec.blocks >= 1 && spec.blocks <= options_.grid.blocks,
                  "session blocks fit the service grid");
    util::expects(!spec.pipeline,
                  "the service owns stream scheduling; pipelined sessions "
                  "are not supported");
    util::expects(!spec.gpu_faults.any(),
                  "fault injection is not supported in the service");
    util::expects(spec.tt_mb == 0 && spec.search.transposition == nullptr,
                  "the service owns the transposition table; per-session "
                  "tables are not supported");
    if (open_sessions_ >= options_.max_sessions) {
      throw AdmissionError("open_session: session limit reached (" +
                           std::to_string(options_.max_sessions) + ")");
    }
    const SessionId id = next_session_++;
    Session s;
    s.spec = spec;
    // All sessions share the service's table (nullptr when disabled): the
    // riders' trees pick the pointer up through SearchConfig.
    s.spec.search.transposition = transposition_.get();
    s.seed = seed;
    s.label = "block-parallel GPU (" + std::to_string(spec.blocks) + "x" +
              std::to_string(spec.threads_per_block) + ")";
    s.tracer = tracer;
    if (tracer != nullptr) {
      // Standalone parity: BlockParallelGpuSearcher::set_tracer creates the
      // "gpu" track immediately, before any search runs.
      s.gpu_track = tracer->track("gpu");
    }
    if (service_tracer_ != nullptr) {
      s.serve_track =
          service_tracer_->track("serve.session." + std::to_string(id));
      service_tracer_->instant(
          s.serve_track, "session_open", clock_.cycles(),
          {{"blocks", static_cast<double>(spec.blocks)},
           {"threads_per_block",
            static_cast<double>(spec.threads_per_block)}});
    }
    ++open_sessions_;
    sessions_.emplace(id, std::move(s));
    return id;
  }

  /// Enqueues one move decision for the session. Tickets of one session run
  /// strictly in submission order (a session is one game), each with the
  /// search seed the standalone searcher would derive for that move index.
  /// Throws AdmissionError when the session's queue is full.
  [[nodiscard]] TicketId submit(SessionId session,
                                const typename G::State& state,
                                const mcts::SearchBudget& budget,
                                const SubmitOptions& opts = {}) {
    const std::lock_guard lock(mu_);
    Session& s = session_at(session);
    util::expects(s.open, "submit on an open session");
    util::expects(!G::is_terminal(state), "choose_move on terminal state");
    if (s.queue.size() >= options_.max_queued_per_session) {
      throw AdmissionError("submit: session " + std::to_string(session) +
                           " queue full (" +
                           std::to_string(options_.max_queued_per_session) +
                           ")");
    }
    const TicketId id = next_ticket_++;
    Ticket t;
    t.id = id;
    t.session = session;
    t.state = state;
    t.budget = budget;
    t.priority = opts.priority;
    t.search_seed = util::derive_seed(s.seed, s.move_counter++);
    t.arrival_cycles =
        opts.arrival_virtual_seconds.has_value()
            ? std::max(clock_.cycles(),
                       clock_.to_cycles(*opts.arrival_virtual_seconds))
            : clock_.cycles();
    t.deadline_cycles =
        t.arrival_cycles +
        clock_.to_cycles(opts.deadline_virtual_seconds.has_value()
                             ? *opts.deadline_virtual_seconds
                             : budget.virtual_seconds);
    t.cancel = std::make_shared<util::CancelToken>();
    if (service_tracer_ != nullptr && s.serve_track >= 0) {
      service_tracer_->instant(
          s.serve_track, "ticket_submit", clock_.cycles(),
          {{"ticket", static_cast<double>(id)},
           {"priority", static_cast<double>(opts.priority)}});
    }
    s.queue.push_back(id);
    tickets_.emplace(id, std::move(t));
    return id;
  }

  /// Non-blocking result check; does not drive rounds.
  [[nodiscard]] std::optional<MoveResult<G>> poll(TicketId ticket) {
    const std::lock_guard lock(mu_);
    const Ticket& t = ticket_at(ticket);
    if (!t.done) return std::nullopt;
    return t.result;
  }

  /// Drives service rounds on the calling thread until the ticket
  /// completes, then returns its result. The lock is released between
  /// rounds so cancel() from another thread can land at a round boundary.
  [[nodiscard]] MoveResult<G> wait(TicketId ticket) {
    for (;;) {
      const std::lock_guard lock(mu_);
      const Ticket& t = ticket_at(ticket);
      if (t.done) return t.result;
      util::check(drive_one_round_locked(),
                  "waited ticket is schedulable (session open, queue "
                  "reachable)");
    }
  }

  /// Drives rounds until no ticket is queued or in flight.
  void run_until_idle() {
    for (;;) {
      const std::lock_guard lock(mu_);
      if (!drive_one_round_locked()) return;
    }
  }

  /// Requests cooperative cancellation: the ticket's search stops at its
  /// next round boundary with StopReason::kCancelled (after at least one
  /// round — the anytime contract: every ticket returns a legal move).
  /// Safe from any thread, including while another thread drives rounds.
  void cancel(TicketId ticket) {
    std::shared_ptr<util::CancelToken> token;
    {
      const std::lock_guard lock(mu_);
      token = ticket_at(ticket).cancel;
    }
    token->cancel();
  }

  /// Retires a session. Its tickets must all be finished (wait or
  /// run_until_idle first; cancel to hurry them).
  void close_session(SessionId session) {
    const std::lock_guard lock(mu_);
    Session& s = session_at(session);
    util::expects(s.open, "close_session on an open session");
    util::expects(s.queue.empty(),
                  "close_session after its tickets finished");
    s.open = false;
    --open_sessions_;
    if (service_tracer_ != nullptr && s.serve_track >= 0) {
      service_tracer_->instant(s.serve_track, "session_close",
                               clock_.cycles());
    }
  }

  /// Current service virtual time, in seconds (arrivals and latencies are
  /// measured on this timeline).
  [[nodiscard]] double virtual_now_seconds() {
    const std::lock_guard lock(mu_);
    return clock_.seconds();
  }

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

  /// The service-wide shared transposition table, or nullptr when
  /// `transposition_mb` is 0 (tests read hit-rates through this).
  [[nodiscard]] const mcts::TranspositionTable* transposition()
      const noexcept {
    return transposition_.get();
  }

 private:
  using Rider = parallel::driver::SessionRider<G>;

  struct Session {
    engine::SchemeSpec spec;
    std::uint64_t seed = 0;
    std::uint64_t move_counter = 0;
    std::string label;
    obs::Tracer* tracer = nullptr;
    int gpu_track = 0;
    int serve_track = -1;
    /// Unfinished tickets, submission order; only the front may run.
    std::deque<TicketId> queue;
    bool open = true;
  };

  struct Ticket {
    TicketId id = 0;
    SessionId session = 0;
    typename G::State state{};
    mcts::SearchBudget budget;
    int priority = 0;
    std::uint64_t search_seed = 0;
    std::uint64_t arrival_cycles = 0;
    std::uint64_t deadline_cycles = 0;
    /// Shared so cancel() can latch it outside the service lock.
    std::shared_ptr<util::CancelToken> cancel;
    std::unique_ptr<Rider> rider;  ///< non-null while in flight
    bool done = false;
    MoveResult<G> result;
  };

  [[nodiscard]] Session& session_at(SessionId id) {
    const auto it = sessions_.find(id);
    util::expects(it != sessions_.end(), "known session id");
    return it->second;
  }

  [[nodiscard]] Ticket& ticket_at(TicketId id) {
    const auto it = tickets_.find(id);
    util::expects(it != tickets_.end(), "known ticket id");
    return it->second;
  }

  /// One scheduler step: pick + pack + run one combined round, or
  /// fast-forward the clock to the next arrival. Returns false when idle
  /// (nothing queued anywhere). Caller holds mu_.
  bool drive_one_round_locked() {
    struct Cand {
      Ticket* ticket;
      Session* session;
    };
    std::vector<Cand> cands;
    std::uint64_t next_arrival = std::numeric_limits<std::uint64_t>::max();
    for (auto& [sid, s] : sessions_) {
      if (s.queue.empty()) continue;
      Ticket& t = ticket_at(s.queue.front());
      if (t.rider != nullptr || t.arrival_cycles <= clock_.cycles()) {
        cands.push_back({&t, &s});
      } else {
        next_arrival = std::min(next_arrival, t.arrival_cycles);
      }
    }
    if (cands.empty()) {
      if (next_arrival == std::numeric_limits<std::uint64_t>::max()) {
        return false;
      }
      // Deterministic fast-forward: the single-threaded service model is
      // idle until the next virtual arrival.
      clock_.advance_to(next_arrival);
      return true;
    }
    // EDF within priority class; ticket id breaks ties deterministically.
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.ticket->priority != b.ticket->priority) {
        return a.ticket->priority < b.ticket->priority;
      }
      if (a.ticket->deadline_cycles != b.ticket->deadline_cycles) {
        return a.ticket->deadline_cycles < b.ticket->deadline_cycles;
      }
      return a.ticket->id < b.ticket->id;
    });
    // Greedy pack in EDF order; a session whose share does not fit this
    // round is skipped, not split (its blocks are its isolation unit). The
    // most urgent ticket always fits: open_session bounds every session's
    // share by the grid.
    std::vector<Cand> packed;
    std::vector<Rider*> riders;
    int packed_blocks = 0;
    for (const Cand& c : cands) {
      const int share = c.session->spec.blocks;
      if (packed_blocks + share > options_.grid.blocks) continue;
      packed_blocks += share;
      if (c.ticket->rider == nullptr) start_ticket(*c.ticket, *c.session);
      packed.push_back(c);
      riders.push_back(c.ticket->rider.get());
    }
    const auto charge =
        parallel::driver::SessionCohortSource<G>::run_round(gpu_, riders);
    clock_.advance(charge.total());
    for (const Cand& c : packed) {
      if (c.ticket->rider->finished()) finish_ticket(*c.ticket, *c.session);
    }
    return true;
  }

  void start_ticket(Ticket& t, Session& s) {
    // One ticket = one move decision: age the shared table exactly as the
    // factory's decorator does per choose_move.
    if (transposition_ != nullptr) transposition_->bump_epoch();
    t.rider = std::make_unique<Rider>(
        t.state, s.spec.search, t.search_seed,
        static_cast<std::size_t>(s.spec.blocks), s.spec.threads_per_block,
        t.budget, t.cancel.get(), s.tracer, s.gpu_track, s.label,
        gpu_.host().clock_hz);
    if (service_tracer_ != nullptr && s.serve_track >= 0) {
      service_tracer_->instant(s.serve_track, "ticket_start", clock_.cycles(),
                               {{"ticket", static_cast<double>(t.id)}});
    }
  }

  void finish_ticket(Ticket& t, Session& s) {
    parallel::driver::SearchOutcome<G> outcome = t.rider->conclude();
    t.result.move = outcome.move;
    t.result.stats = t.rider->stats();
    t.result.arrival_virtual_seconds =
        static_cast<double>(t.arrival_cycles) / clock_.frequency_hz();
    t.result.completion_virtual_seconds = clock_.seconds();
    t.rider.reset();
    t.done = true;
    util::check(!s.queue.empty() && s.queue.front() == t.id,
                "finished ticket is its session's head");
    s.queue.pop_front();
    if (service_tracer_ != nullptr && s.serve_track >= 0) {
      service_tracer_->instant(
          s.serve_track, "ticket_done", clock_.cycles(),
          {{"ticket", static_cast<double>(t.id)},
           {"simulations", static_cast<double>(t.result.stats.simulations)},
           {"latency_virtual_seconds", t.result.latency_virtual_seconds()}});
    }
  }

  ServiceOptions options_;
  std::unique_ptr<mcts::TranspositionTable> transposition_;
  simt::VirtualGpu gpu_;
  util::VirtualClock clock_;
  obs::Tracer* service_tracer_ = nullptr;
  std::mutex mu_;
  SessionId next_session_ = 1;
  TicketId next_ticket_ = 1;
  std::map<SessionId, Session> sessions_;
  std::map<TicketId, Ticket> tickets_;
  int open_sessions_ = 0;
};

}  // namespace gpu_mcts::serve
