// chaos_soak: drives seeded chaos episodes against the supervision layer
// (harness/chaos.hpp) from the command line.
//
//   ./chaos_soak --episodes=200 --seed=1
//   ./chaos_soak --episodes=50 --seed=1000 --trace-dir=artifacts --verbose
//
// Each episode seed expands deterministically into a fault schedule, scheme,
// pipeline depth, budgets, and an optional cancellation point; the episode
// passes when the supervision contract holds (termination within the wall
// bound, a legal move, coherent stats — see run_chaos_episode). A failing
// episode is re-run with a tracer attached and its trace (JSONL, schema v1)
// plus a fault/config log are written under --trace-dir so CI can upload
// them as artifacts. Exit 0 when every episode passes, 1 otherwise.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/chaos.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

namespace {

void usage(const std::string& program) {
  std::cerr
      << "usage: " << program << " [flags]\n"
      << "  --episodes=N    number of episodes to run (default 200)\n"
      << "  --seed=S        first episode seed (default 1; episode i uses\n"
      << "                  seed S+i, so any CI failure reproduces from the\n"
      << "                  one number)\n"
      << "  --trace-dir=D   directory for failure artifacts (default\n"
      << "                  chaos_artifacts): <seed>.trace.jsonl from an\n"
      << "                  instrumented re-run plus <seed>.log with the\n"
      << "                  episode config and violated invariant\n"
      << "  --verbose       describe every episode, not just failures\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpu_mcts;
  const util::CliArgs args(argc, argv);
  if (args.has("help")) {
    usage(args.program_name());
    return 2;
  }
  const std::uint64_t episodes = args.get_uint("episodes", 200);
  const std::uint64_t first_seed = args.get_uint("seed", 1);
  const std::string trace_dir =
      args.get_string("trace-dir", "chaos_artifacts");
  const bool verbose = args.get_bool("verbose", false);

  std::vector<std::uint64_t> failing;
  for (std::uint64_t i = 0; i < episodes; ++i) {
    const std::uint64_t seed = first_seed + i;
    const harness::ChaosOutcome out = harness::run_chaos_episode(seed);
    if (verbose || !out.ok) {
      std::cout << harness::describe(out) << '\n';
    }
    if (out.ok) continue;
    failing.push_back(seed);

    // Re-run the failing seed with full observability and dump artifacts.
    std::filesystem::create_directories(trace_dir);
    obs::Tracer tracer;
    const harness::ChaosOutcome replay =
        harness::run_chaos_episode(seed, &tracer);
    const std::string stem =
        trace_dir + "/" + std::to_string(seed);
    {
      std::ofstream trace_file(stem + ".trace.jsonl");
      obs::write_jsonl(tracer, trace_file);
    }
    {
      std::ofstream log(stem + ".log");
      log << "first run:  " << harness::describe(out) << '\n'
          << "instrumented replay: " << harness::describe(replay) << '\n';
    }
    std::cout << "  artifacts: " << stem << ".trace.jsonl, " << stem
              << ".log\n";
  }

  std::cout << (episodes - failing.size()) << "/" << episodes
            << " episodes passed (seeds " << first_seed << ".."
            << (first_seed + episodes - 1) << ")\n";
  if (!failing.empty()) {
    std::cout << "failing seeds:";
    for (const std::uint64_t seed : failing) std::cout << ' ' << seed;
    std::cout << '\n';
    return 1;
  }
  return 0;
}
