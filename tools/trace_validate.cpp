// trace_validate: checks a JSONL trace export against schema v1.
//
//   ./trace_validate out.jsonl [more.jsonl ...]
//
// Exit 0 when every file validates; exit 1 with "<file>:<line>: <error>" on
// the first violation. CI runs this over traces freshly produced by the
// bench binaries' --trace flag, so schema drift fails the build.
#include <fstream>
#include <iostream>

#include "obs/schema.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_validate TRACE.jsonl [...]\n";
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i]);
    if (!file) {
      std::cerr << argv[i] << ": cannot open\n";
      ok = false;
      continue;
    }
    const gpu_mcts::obs::ValidationResult result =
        gpu_mcts::obs::validate_trace_stream(file);
    if (!result.ok) {
      std::cerr << argv[i] << ":" << result.line << ": " << result.error
                << '\n';
      ok = false;
      continue;
    }
    std::cout << argv[i] << ": ok (" << result.lines << " lines, "
              << result.events << " events)\n";
  }
  return ok ? 0 : 1;
}
