// Self-play: a full Reversi game between the paper's GPU player (block
// parallelism) and the 1-core sequential baseline, with board display and a
// running point-difference trace — a miniature of Figure 7's setup.
//
//   ./selfplay [--budget 0.01] [--show-boards] [--seed N]
#include <iostream>

#include "engine/factory.hpp"
#include "harness/arena.hpp"
#include "reversi/notation.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace gpu_mcts;
  const util::CliArgs args(argc, argv);
  const double budget = args.get_double("budget", 0.01);
  const bool show_boards = args.get_bool("show-boards", false);
  const std::uint64_t seed = args.get_uint("seed", 7);

  auto gpu = engine::make_searcher<reversi::ReversiGame>(
      engine::SchemeSpec::block_gpu_threads(14336, 128).with_seed(seed));
  auto cpu = engine::make_searcher<reversi::ReversiGame>(
      engine::SchemeSpec::sequential().with_seed(seed + 1));
  gpu->reseed(seed);
  cpu->reseed(seed + 1);

  std::cout << "Black: " << gpu->name() << "\nWhite: " << cpu->name()
            << "\nper-move budget: " << budget << "s (virtual)\n\n";

  reversi::Position pos = reversi::initial_position();
  int step = 0;
  while (!reversi::is_terminal(pos)) {
    const bool gpu_to_move = pos.to_move == 0;
    const reversi::Move move = gpu_to_move
                                   ? gpu->choose_move(pos, budget)
                                   : cpu->choose_move(pos, budget);
    pos = reversi::apply_move(pos, move);
    ++step;
    const int diff = reversi::disc_difference(pos, game::Player::kFirst);
    std::cout << "step " << step << ": " << (gpu_to_move ? "GPU " : "CPU ")
              << reversi::move_to_string(move) << "  (X-O: " << diff << ")";
    if (gpu_to_move) {
      std::cout << "  [" << gpu->last_stats().simulations << " sims, depth "
                << gpu->last_stats().max_depth << "]";
    }
    std::cout << '\n';
    if (show_boards) std::cout << reversi::board_to_string(pos) << '\n';
  }

  const int final_diff = reversi::disc_difference(pos, game::Player::kFirst);
  std::cout << "\nFinal board:\n" << reversi::board_to_string(pos, false)
            << "\nFinal disc difference (GPU - CPU): " << final_diff << '\n'
            << (final_diff > 0   ? "GPU (block parallelism) wins."
                : final_diff < 0 ? "CPU wins."
                                 : "Draw.")
            << '\n';
  return 0;
}
