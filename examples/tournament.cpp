// Tournament: round-robin between every parallelization scheme in the paper
// at equal per-move budget — sequential, root-parallel CPU, leaf GPU, block
// GPU, hybrid, and distributed multi-GPU — printing a cross table.
//
//   ./tournament [--budget 0.005] [--games 2] [--seed N]
#include <iostream>
#include <memory>
#include <vector>

#include "harness/arena.hpp"
#include "harness/player.hpp"
#include "util/cli.hpp"
#include "util/elo.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gpu_mcts;
  const util::CliArgs args(argc, argv);
  const double budget = args.get_double("budget", 0.005);
  const auto games = args.get_uint("games", 2);
  const std::uint64_t seed = args.get_uint("seed", 3);

  struct Entrant {
    std::string label;
    harness::PlayerConfig config;
  };
  const std::vector<Entrant> entrants = {
      {"flat-mc", harness::flat_mc_player(seed)},
      {"seq-1cpu", harness::sequential_player(seed)},
      {"tree-8cpu", harness::tree_parallel_player(8, seed)},
      {"root-32cpu", harness::root_parallel_player(32, seed)},
      {"leaf-1024", harness::leaf_gpu_player(1024, 64, seed)},
      {"block-112x64", harness::block_gpu_player(7168, 64, seed)},
      {"hybrid-112x64", harness::hybrid_player(112, 64, true, seed)},
      {"dist-2gpu", harness::distributed_player(2, 56, 64, seed)},
  };

  std::cout << "Round-robin, " << games << " game(s) per pairing, budget "
            << budget << "s/move (virtual).\nEntry = row player's win ratio "
            << "vs column player.\n\n";

  std::vector<std::string> header = {"player"};
  for (const auto& e : entrants) header.push_back(e.label);
  header.push_back("total");
  util::Table table(header);

  std::vector<double> totals(entrants.size(), 0.0);
  for (std::size_t i = 0; i < entrants.size(); ++i) {
    table.begin_row().add(entrants[i].label);
    for (std::size_t j = 0; j < entrants.size(); ++j) {
      if (i == j) {
        table.add("-");
        continue;
      }
      auto subject = harness::make_player(entrants[i].config);
      auto opponent = harness::make_player(entrants[j].config);
      harness::ArenaOptions options;
      options.subject_budget_seconds = budget;
      options.opponent_budget_seconds = budget;
      options.seed = util::derive_seed(seed, i * 16 + j);
      const harness::MatchResult match =
          harness::play_match(*subject, *opponent, games, options);
      totals[i] += match.win_ratio;
      table.add(match.win_ratio, 2);
    }
    table.add(totals[i], 2);
  }
  table.print(std::cout);

  std::cout << "\nTotal score -> Elo vs field average:\n";
  const double max_total = static_cast<double>(entrants.size() - 1);
  for (std::size_t i = 0; i < entrants.size(); ++i) {
    const double score = totals[i] / max_total;
    std::cout << "  " << entrants[i].label << ": "
              << util::format_fixed(util::elo_from_score(score), 0)
              << " Elo (score " << util::format_fixed(score, 2) << ")\n";
  }
  std::cout << "\nExpected ordering mirrors the paper: GPU block/hybrid "
               "schemes lead, root-parallel\nCPU in the middle, leaf "
               "parallelism above sequential but below block.\n";
  return 0;
}
