// Tournament: round-robin between every parallelization scheme in the paper
// at equal per-move budget — sequential, root-parallel CPU, leaf GPU, block
// GPU, hybrid, and distributed multi-GPU — printing a cross table.
//
//   ./tournament [--budget 0.005] [--games 2] [--seed N]
#include <iostream>
#include <memory>
#include <vector>

#include "engine/factory.hpp"
#include "harness/arena.hpp"
#include "util/cli.hpp"
#include "util/elo.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gpu_mcts;
  const util::CliArgs args(argc, argv);
  const double budget = args.get_double("budget", 0.005);
  const auto games = args.get_uint("games", 2);
  const std::uint64_t seed = args.get_uint("seed", 3);

  // Every entrant is an engine spec string — the same strings work on any
  // registered game and on the bench/example --scheme flags.
  struct Entrant {
    std::string label;
    std::string spec;
  };
  const std::vector<Entrant> entrants = {
      {"flat-mc", "flat"},
      {"seq-1cpu", "seq"},
      {"tree-8cpu", "tree:8"},
      {"root-32cpu", "root:32"},
      {"leaf-1024", "leaf:16x64"},
      {"block-112x64", "block:112x64"},
      {"hybrid-112x64", "hybrid:112x64"},
      {"dist-2gpu", "dist:2x56x64"},
  };

  std::cout << "Round-robin, " << games << " game(s) per pairing, budget "
            << budget << "s/move (virtual).\nEntry = row player's win ratio "
            << "vs column player.\n\n";

  std::vector<std::string> header = {"player"};
  for (const auto& e : entrants) header.push_back(e.label);
  header.push_back("total");
  util::Table table(header);

  std::vector<double> totals(entrants.size(), 0.0);
  for (std::size_t i = 0; i < entrants.size(); ++i) {
    table.begin_row().add(entrants[i].label);
    for (std::size_t j = 0; j < entrants.size(); ++j) {
      if (i == j) {
        table.add("-");
        continue;
      }
      auto subject = engine::make_searcher<reversi::ReversiGame>(
          engine::SchemeSpec::parse(entrants[i].spec).with_seed(seed));
      auto opponent = engine::make_searcher<reversi::ReversiGame>(
          engine::SchemeSpec::parse(entrants[j].spec).with_seed(seed));
      harness::ArenaOptions options;
      options.subject_budget = mcts::SearchBudget::from_seconds(budget);
      options.opponent_budget = mcts::SearchBudget::from_seconds(budget);
      options.seed = util::derive_seed(seed, i * 16 + j);
      const harness::MatchResult match =
          harness::play_match(*subject, *opponent, games, options);
      totals[i] += match.win_ratio;
      table.add(match.win_ratio, 2);
    }
    table.add(totals[i], 2);
  }
  table.print(std::cout);

  std::cout << "\nTotal score -> Elo vs field average:\n";
  const double max_total = static_cast<double>(entrants.size() - 1);
  for (std::size_t i = 0; i < entrants.size(); ++i) {
    const double score = totals[i] / max_total;
    std::cout << "  " << entrants[i].label << ": "
              << util::format_fixed(util::elo_from_score(score), 0)
              << " Elo (score " << util::format_fixed(score, 2) << ")\n";
  }
  std::cout << "\nExpected ordering mirrors the paper: GPU block/hybrid "
               "schemes lead, root-parallel\nCPU in the middle, leaf "
               "parallelism above sequential but below block.\n";
  return 0;
}
