// Cluster demo: the multi-GPU (MPI-style) configuration of the paper's
// Figure 9 — several ranks, each driving one virtual GPU with block
// parallelism, voting on each move through an allreduce of root statistics.
//
//   ./cluster_demo [--ranks 4] [--budget 0.01] [--moves 6]
#include <iostream>

#include "engine/factory.hpp"
#include "reversi/notation.hpp"
#include "reversi/reversi_game.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace gpu_mcts;
  const util::CliArgs args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const double budget = args.get_double("budget", 0.01);
  const int max_moves = static_cast<int>(args.get_int("moves", 6));

  auto player = engine::make_searcher<reversi::ReversiGame>(
      engine::SchemeSpec::distributed(ranks, 112, 64)
          .with_seed(args.get_uint("seed", 1)));

  std::cout << "Cluster: " << player->name() << "\n"
            << "Each rank searches independently; root statistics are "
               "allreduced per move\n(binary-tree latency model; see "
               "cluster/comm.hpp).\n\n";

  reversi::Position pos = reversi::initial_position();
  for (int m = 0; m < max_moves && !reversi::is_terminal(pos); ++m) {
    const reversi::Move move = player->choose_move(pos, budget);
    const mcts::SearchStats& stats = player->last_stats();
    std::cout << "move " << (m + 1) << ": "
              << reversi::move_to_string(move) << "  — "
              << stats.simulations << " sims across " << ranks
              << " rank(s), " << stats.simulations_per_second()
              << " sims/s aggregate, elapsed " << stats.virtual_seconds
              << "s (incl. allreduce)\n";
    pos = reversi::apply_move(pos, move);
  }
  std::cout << "\nBoard after the demo moves:\n"
            << reversi::board_to_string(pos) << '\n';
  return 0;
}
