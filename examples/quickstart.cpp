// Quickstart: build a block-parallel GPU player (the paper's contribution),
// ask it for one move from the opening position, and inspect its statistics.
//
//   ./quickstart [--budget 0.05] [--blocks 112] [--tpb 128]
#include <iostream>

#include "harness/player.hpp"
#include "reversi/notation.hpp"
#include "reversi/reversi_game.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace gpu_mcts;
  const util::CliArgs args(argc, argv);
  const double budget = args.get_double("budget", 0.05);
  const int blocks = static_cast<int>(args.get_int("blocks", 112));
  const int tpb = static_cast<int>(args.get_int("tpb", 128));

  // 1. Describe a player: block parallelism, one tree per GPU block.
  harness::PlayerConfig config;
  config.scheme = harness::Scheme::kBlockGpu;
  config.blocks = blocks;
  config.threads_per_block = tpb;
  config.search.seed = args.get_uint("seed", 2011);

  // 2. Build it and show the position it will think about.
  auto player = harness::make_player(config);
  const reversi::Position opening = reversi::initial_position();
  std::cout << "Position:\n" << reversi::board_to_string(opening) << '\n';

  // 3. One decision under a virtual-time budget.
  const reversi::Move move = player->choose_move(opening, budget);

  // 4. Results.
  const mcts::SearchStats& stats = player->last_stats();
  std::cout << player->name() << " chose: " << reversi::move_to_string(move)
            << "\n\n"
            << "simulations        " << stats.simulations << '\n'
            << "kernel rounds      " << stats.rounds << '\n'
            << "tree nodes         " << stats.tree_nodes << '\n'
            << "max tree depth     " << stats.max_depth << '\n'
            << "virtual seconds    " << stats.virtual_seconds << '\n'
            << "simulations/second " << stats.simulations_per_second() << '\n'
            << "divergence waste   " << stats.divergence_waste << '\n';
  return 0;
}
