// Quickstart: build a player from a scheme spec string (the engine API),
// ask it for one move from the opening position, and inspect its statistics.
// Optionally record the search as a virtual-time trace.
//
//   ./quickstart [--scheme block:112x128] [--budget 0.05] [--wall-ms MS]
//                [--exec-threads N] [--pipeline] [--pipeline-depth N]
//                [--trace out.jsonl] [--chrome-trace out.json]
//
// Scheme spec examples: "seq", "root:8", "leaf:8x128", "block:112x128",
// "block:112x128+pipeline", "hybrid:112x128+pipeline:3", "dist:4x56x128"
// (see engine/spec.hpp for the grammar).
#include <fstream>
#include <iostream>

#include "engine/factory.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "mcts/budget.hpp"
#include "reversi/notation.hpp"
#include "reversi/reversi_game.hpp"
#include "util/cli.hpp"

namespace {
const char* stop_reason_name(gpu_mcts::mcts::StopReason reason) {
  switch (reason) {
    case gpu_mcts::mcts::StopReason::kBudget: return "budget";
    case gpu_mcts::mcts::StopReason::kWallDeadline: return "wall-deadline";
    case gpu_mcts::mcts::StopReason::kCancelled: return "cancelled";
    case gpu_mcts::mcts::StopReason::kTreeSaturated: return "tree-saturated";
  }
  return "?";
}
}  // namespace

int main(int argc, char** argv) {
  using namespace gpu_mcts;
  const util::CliArgs args(argc, argv);
  const double budget = args.get_double("budget", 0.05);
  const std::string spec_text = args.get_string("scheme", "block:112x128");
  const std::string trace_jsonl = args.get_string("trace", "");
  const std::string trace_chrome = args.get_string("chrome-trace", "");

  // 1. Describe a player with a spec string and build it for Reversi. The
  //    same spec builds a searcher for any registered game.
  engine::SchemeSpec spec = engine::SchemeSpec::parse(spec_text);
  spec.search.seed = args.get_uint("seed", 2011);
  // Host workers for the virtual GPU's execution backend. Results are
  // bit-identical for every value — this only buys wall-clock speed
  // (DESIGN.md §9). 0 inherits GPU_MCTS_EXEC_THREADS.
  spec.exec_threads = static_cast<int>(args.get_uint("exec-threads", 0));
  // Stream-pipelined rounds for the leaf/block/hybrid GPU schemes
  // (equivalent to the "+pipeline[:<depth>]" spec suffix); leaf/block
  // results are bit-identical either way.
  if (args.get_bool("pipeline", false)) spec.pipeline = true;
  spec.pipeline_depth = static_cast<int>(
      args.get_uint("pipeline-depth", spec.pipeline_depth));
  auto player = engine::make_searcher<reversi::ReversiGame>(spec);

  // 2. Optionally attach a tracer: spans and metrics in *virtual* time.
  obs::Tracer tracer;
  const bool tracing = !trace_jsonl.empty() || !trace_chrome.empty();
  if (tracing) player->set_tracer(&tracer);

  const reversi::Position opening = reversi::initial_position();
  std::cout << "Position:\n" << reversi::board_to_string(opening) << '\n';

  // 3. One decision under a virtual-time budget, optionally capped by a
  //    wall-clock deadline (DESIGN.md §12): the search returns its
  //    best-so-far move within ~2x the deadline even under GPU faults.
  mcts::SearchBudget search_budget;
  search_budget.virtual_seconds = budget;
  if (args.has("wall-ms")) {
    search_budget.wall_ms = args.get_double("wall-ms", 0.0);
  }
  const reversi::Move move = player->choose_move(opening, search_budget);

  // 4. Results.
  const mcts::SearchStats& stats = player->last_stats();
  std::cout << player->name() << " chose: " << reversi::move_to_string(move)
            << "\n\n"
            << "simulations        " << stats.simulations << '\n'
            << "  on the CPU       " << stats.cpu_iterations << '\n'
            << "  on the GPU       " << stats.gpu_simulations << '\n'
            << "kernel rounds      " << stats.rounds << '\n'
            << "tree nodes         " << stats.tree_nodes << '\n'
            << "max tree depth     " << stats.max_depth << '\n'
            << "virtual seconds    " << stats.virtual_seconds << '\n'
            << "simulations/second " << stats.simulations_per_second() << '\n'
            << "divergence waste   " << stats.divergence_waste << '\n'
            << "stopped by         " << stop_reason_name(stats.stop_reason)
            << '\n';

  // 5. Trace exports: JSONL (stable schema, tools/trace_validate checks it)
  //    and Chrome trace_event (load in chrome://tracing or ui.perfetto.dev).
  if (tracing) {
    if (!trace_jsonl.empty()) {
      std::ofstream file(trace_jsonl);
      if (!file) {
        std::cerr << "cannot write " << trace_jsonl << '\n';
        return 1;
      }
      obs::write_jsonl(tracer, file);
      std::cout << "\nwrote trace " << trace_jsonl << '\n';
    }
    if (!trace_chrome.empty()) {
      std::ofstream file(trace_chrome);
      if (!file) {
        std::cerr << "cannot write " << trace_chrome << '\n';
        return 1;
      }
      obs::write_chrome_trace(tracer, file);
      std::cout << "wrote Chrome trace " << trace_chrome << '\n';
    }
    std::cout << '\n';
    obs::print_summary(tracer, std::cout);
  }
  return 0;
}
