// Generality demo — the paper's §V future work: "Application of the
// algorithm to other domain. A more general task can and should be solved by
// the algorithm." Every searcher in this repo is templated on the Game
// concept, so the paper's block-parallel GPU scheme plays Connect Four with
// zero changes: one block per tree, one playout per thread, same kernel.
//
//   ./connect4_demo [--budget 0.02] [--blocks 28] [--tpb 64]
#include <array>
#include <iostream>

#include "engine/factory.hpp"
#include "game/connect4.hpp"
#include "util/cli.hpp"

namespace {

using gpu_mcts::game::ConnectFour;

void print_board(const ConnectFour::State& s) {
  for (int row = ConnectFour::kRows - 1; row >= 0; --row) {
    std::cout << '|';
    for (int col = 0; col < ConnectFour::kCols; ++col) {
      const std::uint64_t bit = 1ULL << (col * 7 + row);
      std::cout << ((s.stones[0] & bit) ? 'X' : (s.stones[1] & bit) ? 'O' : '.')
                << '|';
    }
    std::cout << '\n';
  }
  std::cout << " 0 1 2 3 4 5 6\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpu_mcts;
  const util::CliArgs args(argc, argv);
  const double budget = args.get_double("budget", 0.02);
  const int blocks = static_cast<int>(args.get_int("blocks", 28));
  const int tpb = static_cast<int>(args.get_int("tpb", 64));

  // The engine factory is game-generic: the same specs that drive the
  // Reversi benches build Connect Four searchers (the builders apply the
  // batch-UCB default for GPU schemes).
  auto gpu = engine::make_searcher<ConnectFour>(
      engine::SchemeSpec::block_gpu(blocks, tpb)
          .with_seed(args.get_uint("seed", 17)));
  auto cpu = engine::make_searcher<ConnectFour>(engine::SchemeSpec::sequential());

  std::cout << "Connect Four: " << gpu->name() << " (X) vs " << cpu->name()
            << " (O), " << budget << "s/move (virtual)\n\n";

  ConnectFour::State s = ConnectFour::initial_state();
  int ply = 0;
  while (!ConnectFour::is_terminal(s)) {
    const bool gpu_turn =
        ConnectFour::player_to_move(s) == game::Player::kFirst;
    const ConnectFour::Move m = gpu_turn
                                    ? gpu->choose_move(s, budget)
                                    : cpu->choose_move(s, budget);
    s = ConnectFour::apply(s, m);
    std::cout << "ply " << ++ply << ": " << (gpu_turn ? "GPU" : "CPU")
              << " drops column " << static_cast<int>(m);
    if (gpu_turn) {
      std::cout << "  [" << gpu->last_stats().simulations << " sims, "
                << gpu->last_stats().rounds << " rounds]";
    }
    std::cout << '\n';
  }
  std::cout << '\n';
  print_board(s);
  switch (ConnectFour::outcome_for(s, game::Player::kFirst)) {
    case game::Outcome::kWin: std::cout << "GPU (X) wins.\n"; break;
    case game::Outcome::kLoss: std::cout << "CPU (O) wins.\n"; break;
    case game::Outcome::kDraw: std::cout << "Draw.\n"; break;
  }
  return 0;
}
