// Interactive Reversi against any scheme in the library.
//
//   ./play_reversi [--scheme block-gpu] [--budget 0.1] [--color white]
//
// Enter moves as algebraic squares ("d3"), "pass" when you must pass,
// "hint" for the engine's root statistics, or "quit". EOF ends the game
// (the engine finishes nothing silently — current standings are printed).
#include <iostream>
#include <string>

#include "harness/endgame_wrapper.hpp"
#include "harness/player.hpp"
#include "reversi/notation.hpp"
#include "reversi/reversi_game.hpp"
#include "util/cli.hpp"

namespace {

using namespace gpu_mcts;

harness::PlayerConfig config_for(const std::string& scheme,
                                 std::uint64_t seed) {
  if (scheme == "sequential") return harness::sequential_player(seed);
  if (scheme == "root") return harness::root_parallel_player(32, seed);
  if (scheme == "tree") return harness::tree_parallel_player(8, seed);
  if (scheme == "flat") return harness::flat_mc_player(seed);
  if (scheme == "leaf-gpu") return harness::leaf_gpu_player(1024, 64, seed);
  if (scheme == "hybrid") return harness::hybrid_player(112, 64, true, seed);
  if (scheme == "distributed")
    return harness::distributed_player(2, 56, 64, seed);
  return harness::block_gpu_player(7168, 64, seed);  // "block-gpu" default
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string scheme = args.get_string("scheme", "block-gpu");
  const double budget = args.get_double("budget", 0.1);
  const bool human_is_black = args.get_string("color", "black") != "white";

  std::unique_ptr<mcts::Searcher<reversi::ReversiGame>> engine =
      harness::make_player(config_for(scheme, args.get_uint("seed", 1)));
  // --endgame N: play provably optimal moves once N empties remain.
  if (const auto solve_at = args.get_int("endgame", 0); solve_at > 0) {
    engine = std::make_unique<harness::EndgameAwareSearcher>(
        std::move(engine), static_cast<int>(solve_at));
  }
  std::cout << "You play " << (human_is_black ? "X (black)" : "O (white)")
            << " against " << engine->name() << " at " << budget
            << "s/move.\nCommands: <square> | pass | hint | quit\n\n";

  reversi::Position pos = reversi::initial_position();
  std::array<reversi::Move, 34> legal{};
  while (!reversi::is_terminal(pos)) {
    std::cout << reversi::board_to_string(pos) << '\n';
    const bool humans_turn =
        (pos.to_move == 0) == human_is_black;
    reversi::Move move;
    if (humans_turn) {
      const int n = reversi::legal_moves(pos, std::span(legal));
      for (;;) {
        std::cout << "your move> " << std::flush;
        std::string input;
        if (!(std::cin >> input) || input == "quit") {
          std::cout << "\nGame abandoned. Current difference (X-O): "
                    << reversi::disc_difference(pos, game::Player::kFirst)
                    << '\n';
          return 0;
        }
        if (input == "hint") {
          const auto hint = engine->choose_move(pos, budget);
          std::cout << "engine suggests " << reversi::move_to_string(hint)
                    << '\n';
          continue;
        }
        const auto parsed = reversi::move_from_string(input);
        bool ok = false;
        if (parsed.has_value()) {
          for (int i = 0; i < n; ++i) ok = ok || legal[i] == *parsed;
        }
        if (!ok) {
          std::cout << "illegal; legal moves:";
          for (int i = 0; i < n; ++i)
            std::cout << ' ' << reversi::move_to_string(legal[i]);
          std::cout << '\n';
          continue;
        }
        move = *parsed;
        break;
      }
    } else {
      move = engine->choose_move(pos, budget);
      std::cout << "engine plays " << reversi::move_to_string(move) << "  ["
                << engine->last_stats().simulations << " sims]\n";
    }
    pos = reversi::apply_move(pos, move);
  }

  std::cout << reversi::board_to_string(pos, false) << '\n';
  const int diff = reversi::disc_difference(
      pos, human_is_black ? game::Player::kFirst : game::Player::kSecond);
  std::cout << (diff > 0   ? "You win by "
                : diff < 0 ? "Engine wins by "
                           : "Draw (")
            << (diff == 0 ? 0 : std::abs(diff)) << (diff == 0 ? ")" : " discs")
            << ".\n";
  return 0;
}
