// Interactive Reversi against any scheme in the library.
//
//   ./play_reversi [--scheme block:112x64] [--budget 0.1] [--color white]
//
// --scheme takes an engine spec string ("seq", "root:32", "block:112x64",
// "hybrid:112x64", "dist:2x56x64", ...); a few bare legacy names
// ("block-gpu", "root", ...) expand to their historical defaults.
//
// Enter moves as algebraic squares ("d3"), "pass" when you must pass,
// "hint" for the engine's root statistics, or "quit". EOF ends the game
// (the engine finishes nothing silently — current standings are printed).
#include <iostream>
#include <string>

#include "engine/factory.hpp"
#include "harness/endgame_wrapper.hpp"
#include "reversi/notation.hpp"
#include "reversi/reversi_game.hpp"
#include "util/cli.hpp"

namespace {

using namespace gpu_mcts;

/// Bare legacy scheme names keep their historical parameters; anything else
/// goes straight to the engine's spec grammar.
std::string expand_legacy(const std::string& scheme) {
  if (scheme == "root") return "root:32";
  if (scheme == "tree") return "tree:8";
  if (scheme == "leaf-gpu") return "leaf:16x64";
  if (scheme == "block-gpu") return "block:112x64";
  if (scheme == "hybrid") return "hybrid:112x64";
  if (scheme == "distributed") return "dist:2x56x64";
  return scheme;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string scheme =
      expand_legacy(args.get_string("scheme", "block:112x64"));
  const double budget = args.get_double("budget", 0.1);
  const bool human_is_black = args.get_string("color", "black") != "white";

  std::unique_ptr<mcts::Searcher<reversi::ReversiGame>> engine;
  try {
    engine = engine::make_searcher<reversi::ReversiGame>(
        engine::SchemeSpec::parse(scheme).with_seed(args.get_uint("seed", 1)));
  } catch (const std::invalid_argument& e) {
    std::cerr << "bad --scheme: " << e.what() << '\n';
    return 1;
  }
  // --endgame N: play provably optimal moves once N empties remain.
  if (const auto solve_at = args.get_int("endgame", 0); solve_at > 0) {
    engine = std::make_unique<harness::EndgameAwareSearcher>(
        std::move(engine), static_cast<int>(solve_at));
  }
  std::cout << "You play " << (human_is_black ? "X (black)" : "O (white)")
            << " against " << engine->name() << " at " << budget
            << "s/move.\nCommands: <square> | pass | hint | quit\n\n";

  reversi::Position pos = reversi::initial_position();
  std::array<reversi::Move, 34> legal{};
  while (!reversi::is_terminal(pos)) {
    std::cout << reversi::board_to_string(pos) << '\n';
    const bool humans_turn =
        (pos.to_move == 0) == human_is_black;
    reversi::Move move;
    if (humans_turn) {
      const int n = reversi::legal_moves(pos, std::span(legal));
      for (;;) {
        std::cout << "your move> " << std::flush;
        std::string input;
        if (!(std::cin >> input) || input == "quit") {
          std::cout << "\nGame abandoned. Current difference (X-O): "
                    << reversi::disc_difference(pos, game::Player::kFirst)
                    << '\n';
          return 0;
        }
        if (input == "hint") {
          const auto hint = engine->choose_move(pos, budget);
          std::cout << "engine suggests " << reversi::move_to_string(hint)
                    << '\n';
          continue;
        }
        const auto parsed = reversi::move_from_string(input);
        bool ok = false;
        if (parsed.has_value()) {
          for (int i = 0; i < n; ++i) ok = ok || legal[i] == *parsed;
        }
        if (!ok) {
          std::cout << "illegal; legal moves:";
          for (int i = 0; i < n; ++i)
            std::cout << ' ' << reversi::move_to_string(legal[i]);
          std::cout << '\n';
          continue;
        }
        move = *parsed;
        break;
      }
    } else {
      move = engine->choose_move(pos, budget);
      std::cout << "engine plays " << reversi::move_to_string(move) << "  ["
                << engine->last_stats().simulations << " sims]\n";
    }
    pos = reversi::apply_move(pos, move);
  }

  std::cout << reversi::board_to_string(pos, false) << '\n';
  const int diff = reversi::disc_difference(
      pos, human_is_black ? game::Player::kFirst : game::Player::kSecond);
  std::cout << (diff > 0   ? "You win by "
                : diff < 0 ? "Engine wins by "
                           : "Draw (")
            << (diff == 0 ? 0 : std::abs(diff)) << (diff == 0 ? ")" : " discs")
            << ".\n";
  return 0;
}
